// Package sampling implements random sampling from databases — the
// Section 5.6 operation Shoshani's survey singles out as the one where
// pushing statistics into the database clearly pays: "it is very
// inefficient to extract large collections of data from the database
// system, only to sample the collection outside the system". The
// techniques follow Olken & Rotem's survey [OR95]: reservoir sampling over
// streams, Bernoulli sampling, stratified sampling, and (via package
// btree) rank-based and acceptance/rejection sampling from B+trees.
//
// Extraction cost is modeled explicitly: every sampler reports how many
// items it had to materialize, so the in-DB vs extract-then-sample
// comparison (bench E14) measures the asymmetry the paper describes.
package sampling

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrBadArgs is returned for invalid sampling parameters.
var ErrBadArgs = errors.New("sampling: invalid arguments")

// Reservoir maintains a uniform k-sample of a stream using Vitter's
// algorithm R: each of the n items seen so far is in the sample with
// probability k/n, using O(k) memory — the in-DB way to sample a scan.
type Reservoir[T any] struct {
	k      int
	seen   int
	sample []T
	rng    *rand.Rand
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir[T any](k int, rng *rand.Rand) (*Reservoir[T], error) {
	if k <= 0 || rng == nil {
		return nil, fmt.Errorf("%w: k=%d", ErrBadArgs, k)
	}
	return &Reservoir[T]{k: k, rng: rng}, nil
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.sample[j] = item
	}
}

// Seen returns the number of items offered.
func (r *Reservoir[T]) Seen() int { return r.seen }

// Sample returns the current sample (length min(k, seen)).
func (r *Reservoir[T]) Sample() []T { return append([]T(nil), r.sample...) }

// Bernoulli returns each item independently with probability p, plus the
// number of items scanned (always len(items): Bernoulli sampling is a full
// scan, but inside the database only the sample crosses the interface).
func Bernoulli[T any](items []T, p float64, rng *rand.Rand) ([]T, int, error) {
	if p < 0 || p > 1 || rng == nil {
		return nil, 0, fmt.Errorf("%w: p=%v", ErrBadArgs, p)
	}
	var out []T
	for _, it := range items {
		if rng.Float64() < p {
			out = append(out, it)
		}
	}
	return out, len(items), nil
}

// WithoutReplacement draws k distinct items uniformly via a partial
// Fisher–Yates shuffle.
func WithoutReplacement[T any](items []T, k int, rng *rand.Rand) ([]T, error) {
	if k < 0 || k > len(items) || rng == nil {
		return nil, fmt.Errorf("%w: k=%d of %d", ErrBadArgs, k, len(items))
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, items[idx[i]])
	}
	return out, nil
}

// Stratum is one stratum of a stratified sample.
type Stratum[T any] struct {
	Name  string
	Items []T
}

// StratifiedProportional draws a total of k items allocated to strata
// proportionally to their sizes (at least one from each non-empty stratum
// when k allows), sampling without replacement within each stratum —
// the survey-statistics workhorse over classified populations.
func StratifiedProportional[T any](strata []Stratum[T], k int, rng *rand.Rand) (map[string][]T, error) {
	if k <= 0 || rng == nil {
		return nil, fmt.Errorf("%w: k=%d", ErrBadArgs, k)
	}
	total := 0
	for _, s := range strata {
		total += len(s.Items)
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: empty strata", ErrBadArgs)
	}
	if k > total {
		k = total
	}
	out := map[string][]T{}
	// Largest-remainder allocation.
	type alloc struct {
		i     int
		base  int
		remd  float64
		limit int
	}
	allocs := make([]alloc, len(strata))
	assigned := 0
	for i, s := range strata {
		exact := float64(k) * float64(len(s.Items)) / float64(total)
		b := int(exact)
		if b > len(s.Items) {
			b = len(s.Items)
		}
		allocs[i] = alloc{i: i, base: b, remd: exact - float64(int(exact)), limit: len(s.Items)}
		assigned += b
	}
	sort.Slice(allocs, func(a, b int) bool { return allocs[a].remd > allocs[b].remd })
	for j := 0; assigned < k && j < len(allocs); j++ {
		if allocs[j].base < allocs[j].limit {
			allocs[j].base++
			assigned++
		}
	}
	for _, a := range allocs {
		s := strata[a.i]
		if a.base == 0 {
			continue
		}
		picked, err := WithoutReplacement(s.Items, a.base, rng)
		if err != nil {
			return nil, err
		}
		out[s.Name] = picked
	}
	return out, nil
}

// ExtractThenSample models the anti-pattern: the client pulls the whole
// collection across the interface and samples locally. It returns the
// sample and the number of items that crossed the interface (all of them).
func ExtractThenSample[T any](items []T, k int, rng *rand.Rand) ([]T, int, error) {
	extracted := make([]T, len(items)) // the full copy the paper decries
	copy(extracted, items)
	s, err := WithoutReplacement(extracted, k, rng)
	return s, len(extracted), err
}

// InDBSample models the sampling-pushed-into-the-DB alternative: a
// reservoir pass inside the engine; only k items cross the interface.
func InDBSample[T any](items []T, k int, rng *rand.Rand) ([]T, int, error) {
	r, err := NewReservoir[T](k, rng)
	if err != nil {
		return nil, 0, err
	}
	for _, it := range items {
		r.Add(it)
	}
	s := r.Sample()
	return s, len(s), nil
}
