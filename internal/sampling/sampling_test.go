package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestReservoirValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewReservoir[int](0, rng); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewReservoir[int](1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestReservoirSizeAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, _ := NewReservoir[int](10, rng)
	for _, x := range ints(1000) {
		r.Add(x)
	}
	s := r.Sample()
	if len(s) != 10 || r.Seen() != 1000 {
		t.Fatalf("sample %d, seen %d", len(s), r.Seen())
	}
	seen := map[int]bool{}
	for _, x := range s {
		if x < 0 || x >= 1000 || seen[x] {
			t.Fatalf("bad sample element %d", x)
		}
		seen[x] = true
	}
	// Fewer items than k: keep all.
	r2, _ := NewReservoir[int](10, rng)
	for _, x := range ints(3) {
		r2.Add(x)
	}
	if len(r2.Sample()) != 3 {
		t.Errorf("small stream sample = %d", len(r2.Sample()))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 20 items should appear in a k=5 sample with p=0.25.
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 20)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir[int](5, rng)
		for _, x := range ints(20) {
			r.Add(x)
		}
		for _, x := range r.Sample() {
			counts[x]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("item %d appeared %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, scanned, err := Bernoulli(ints(10000), 0.3, rng)
	if err != nil || scanned != 10000 {
		t.Fatalf("scanned %d, %v", scanned, err)
	}
	if math.Abs(float64(len(s))-3000) > 200 {
		t.Errorf("sample size %d, want ~3000", len(s))
	}
	if _, _, err := Bernoulli(ints(5), 1.5, rng); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := WithoutReplacement(ints(100), 30, rng)
	if err != nil || len(s) != 30 {
		t.Fatalf("sample %d, %v", len(s), err)
	}
	seen := map[int]bool{}
	for _, x := range s {
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
	if _, err := WithoutReplacement(ints(5), 6, rng); err == nil {
		t.Error("k>n should fail")
	}
	// k == n returns a permutation.
	s, _ = WithoutReplacement(ints(5), 5, rng)
	if len(s) != 5 {
		t.Errorf("full sample = %d", len(s))
	}
}

func TestStratifiedProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	strata := []Stratum[int]{
		{Name: "big", Items: ints(900)},
		{Name: "small", Items: ints(100)},
	}
	out, err := StratifiedProportional(strata, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	nb, ns := len(out["big"]), len(out["small"])
	if nb+ns != 100 {
		t.Fatalf("total = %d", nb+ns)
	}
	if nb < 85 || nb > 95 {
		t.Errorf("big stratum got %d, want ~90", nb)
	}
	// k > total clips.
	out, err = StratifiedProportional([]Stratum[int]{{Name: "x", Items: ints(3)}}, 10, rng)
	if err != nil || len(out["x"]) != 3 {
		t.Errorf("clipped = %v, %v", out, err)
	}
	// Errors.
	if _, err := StratifiedProportional([]Stratum[int]{}, 5, rng); err == nil {
		t.Error("empty strata should fail")
	}
	if _, err := StratifiedProportional(strata, 0, rng); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestExtractVsInDBCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := ints(100000)
	_, extracted, err := ExtractThenSample(items, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, crossed, err := InDBSample(items, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if extracted != 100000 || crossed != 100 {
		t.Errorf("extract moved %d, in-DB moved %d", extracted, crossed)
	}
	// The paper's point: 1000x less data crosses the interface.
	if crossed*100 > extracted {
		t.Error("in-DB sampling did not reduce interface traffic substantially")
	}
}
