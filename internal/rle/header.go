package rle

import (
	"errors"
	"fmt"
)

// ErrAbsent is returned by Header.Forward when the logical position falls
// in an absent (null) run, i.e. the cell was compressed out.
var ErrAbsent = errors.New("rle: logical position is null (compressed out)")

// Header is the header-compression run structure of [EOA81] (Figure 21 of
// the paper). A logical sequence of length n with many nulls is described
// as alternating runs of present and absent positions. Only present values
// are stored physically, in logical order; the header maps between logical
// and physical positions.
//
// Internally the header keeps, for each run, the cumulative logical count
// up to and including the run, plus the cumulative present count — the
// "accumulate so a monotonically increasing sequence is formed" step the
// paper describes, which makes both mappings binary-searchable.
type Header struct {
	endLogical []int  // cumulative logical positions at end of each run
	endPresent []int  // cumulative present positions at end of each run
	present    []bool // whether run i is a present run
	n          int    // total logical length
	p          int    // total present count
}

// HeaderBuilder incrementally constructs a Header by appending runs or by
// scanning a presence mask.
type HeaderBuilder struct {
	h       Header
	lastSet bool // whether any run appended yet
	lastVal bool
}

// AppendRun appends a run of length elements, present or absent. Adjacent
// runs of the same kind are merged.
func (b *HeaderBuilder) AppendRun(present bool, length int) {
	if length < 0 {
		panic("rle: negative run length")
	}
	if length == 0 {
		return
	}
	h := &b.h
	h.n += length
	if present {
		h.p += length
	}
	if b.lastSet && b.lastVal == present {
		h.endLogical[len(h.endLogical)-1] = h.n
		h.endPresent[len(h.endPresent)-1] = h.p
		return
	}
	h.endLogical = append(h.endLogical, h.n)
	h.endPresent = append(h.endPresent, h.p)
	h.present = append(h.present, present)
	b.lastSet, b.lastVal = true, present
}

// AppendBit appends a single logical position.
func (b *HeaderBuilder) AppendBit(present bool) { b.AppendRun(present, 1) }

// Build returns the completed header. The builder must not be used after.
func (b *HeaderBuilder) Build() *Header {
	h := b.h
	return &h
}

// BuildHeader constructs a Header from a presence mask in one pass.
func BuildHeader(mask []bool) *Header {
	var b HeaderBuilder
	for _, m := range mask {
		b.AppendBit(m)
	}
	return b.Build()
}

// Len returns the total logical length.
func (h *Header) Len() int { return h.n }

// Present returns the number of present (stored) positions.
func (h *Header) Present() int { return h.p }

// NumRuns returns the number of alternating runs.
func (h *Header) NumRuns() int { return len(h.endLogical) }

// runFor returns the index of the run containing logical position i.
func (h *Header) runFor(i int) int {
	// First run whose endLogical > i.
	lo, hi := 0, len(h.endLogical)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.endLogical[mid] > i {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Forward maps a logical position to its physical position among the stored
// values. It returns ErrAbsent if the position was compressed out.
func (h *Header) Forward(logical int) (int, error) {
	if logical < 0 || logical >= h.n {
		return 0, fmt.Errorf("rle: logical position %d out of range [0,%d)", logical, h.n)
	}
	r := h.runFor(logical)
	if !h.present[r] {
		return 0, ErrAbsent
	}
	startLogical, startPresent := 0, 0
	if r > 0 {
		startLogical = h.endLogical[r-1]
		startPresent = h.endPresent[r-1]
	}
	return startPresent + (logical - startLogical), nil
}

// IsPresent reports whether the logical position holds a stored value.
func (h *Header) IsPresent(logical int) bool {
	if logical < 0 || logical >= h.n {
		return false
	}
	return h.present[h.runFor(logical)]
}

// Inverse maps a physical position (index into the stored values) back to
// its logical position — the inverse mapping [EOA81] supports with the same
// accumulated structure.
func (h *Header) Inverse(physical int) (int, error) {
	if physical < 0 || physical >= h.p {
		return 0, fmt.Errorf("rle: physical position %d out of range [0,%d)", physical, h.p)
	}
	// First run whose endPresent > physical; absent runs never match because
	// their endPresent equals the previous run's.
	lo, hi := 0, len(h.endPresent)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.endPresent[mid] > physical {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := lo
	startLogical, startPresent := 0, 0
	if r > 0 {
		startLogical = h.endLogical[r-1]
		startPresent = h.endPresent[r-1]
	}
	return startLogical + (physical - startPresent), nil
}

// ForEachPresentRun calls fn(logicalStart, physicalStart, length) for every
// present run, in order. This is the bulk-scan entry point used by
// compressed array aggregation.
func (h *Header) ForEachPresentRun(fn func(logicalStart, physicalStart, length int)) {
	for r := range h.present {
		if !h.present[r] {
			continue
		}
		startLogical, startPresent := 0, 0
		if r > 0 {
			startLogical = h.endLogical[r-1]
			startPresent = h.endPresent[r-1]
		}
		fn(startLogical, startPresent, h.endLogical[r]-startLogical)
	}
}

// SizeEntries reports the number of header entries (runs), the compressed
// metadata size for space accounting.
func (h *Header) SizeEntries() int { return len(h.endLogical) }
