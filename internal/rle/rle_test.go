package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{"a"},
		{"a", "a", "a"},
		{"a", "b", "a"},
		{"x", "x", "y", "y", "y", "z"},
	}
	for _, in := range cases {
		r := Encode(in)
		out := r.Decode()
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestRunsMerging(t *testing.T) {
	r := Encode([]int{1, 1, 1, 2, 2, 1})
	if r.NumRuns() != 3 {
		t.Errorf("NumRuns = %d, want 3", r.NumRuns())
	}
	if r.Len() != 6 {
		t.Errorf("Len = %d, want 6", r.Len())
	}
}

func TestRunsAt(t *testing.T) {
	in := []int{5, 5, 7, 7, 7, 9, 5}
	r := Encode(in)
	for i, want := range in {
		if got := r.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRunsAtAfterAppend(t *testing.T) {
	r := Encode([]int{1, 1})
	if r.At(0) != 1 {
		t.Fatal("At before append wrong")
	}
	r.Append(2)
	r.Append(2)
	if got := r.At(3); got != 2 {
		t.Errorf("At(3) after append = %d, want 2", got)
	}
	if r.Len() != 4 || r.NumRuns() != 2 {
		t.Errorf("Len=%d NumRuns=%d, want 4, 2", r.Len(), r.NumRuns())
	}
}

func TestRunsAtOutOfRangePanics(t *testing.T) {
	r := Encode([]int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("At(1) did not panic")
		}
	}()
	r.At(1)
}

func TestForEachRun(t *testing.T) {
	r := Encode([]string{"a", "a", "b", "c", "c", "c"})
	type rec struct {
		start int
		val   string
		n     int
	}
	var got []rec
	r.ForEachRun(func(start int, run Run[string]) {
		got = append(got, rec{start, run.Value, run.Length})
	})
	want := []rec{{0, "a", 2}, {2, "b", 1}, {3, "c", 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEachRun = %v, want %v", got, want)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN) % 200
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(rng.Intn(3)) // few distinct values -> long runs
		}
		out := Encode(in).Decode()
		if n == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderBasics(t *testing.T) {
	// mask: V V _ _ V _ (V=present)
	h := BuildHeader([]bool{true, true, false, false, true, false})
	if h.Len() != 6 || h.Present() != 3 {
		t.Fatalf("Len=%d Present=%d, want 6, 3", h.Len(), h.Present())
	}
	if h.NumRuns() != 4 {
		t.Errorf("NumRuns = %d, want 4", h.NumRuns())
	}
	wantPhys := map[int]int{0: 0, 1: 1, 4: 2}
	for logical := 0; logical < 6; logical++ {
		phys, err := h.Forward(logical)
		if want, ok := wantPhys[logical]; ok {
			if err != nil || phys != want {
				t.Errorf("Forward(%d) = %d, %v; want %d", logical, phys, err, want)
			}
			if !h.IsPresent(logical) {
				t.Errorf("IsPresent(%d) = false", logical)
			}
		} else {
			if err != ErrAbsent {
				t.Errorf("Forward(%d) err = %v, want ErrAbsent", logical, err)
			}
			if h.IsPresent(logical) {
				t.Errorf("IsPresent(%d) = true", logical)
			}
		}
	}
	for phys, logical := range map[int]int{0: 0, 1: 1, 2: 4} {
		got, err := h.Inverse(phys)
		if err != nil || got != logical {
			t.Errorf("Inverse(%d) = %d, %v; want %d", phys, got, err, logical)
		}
	}
}

func TestHeaderBounds(t *testing.T) {
	h := BuildHeader([]bool{true, false})
	if _, err := h.Forward(-1); err == nil {
		t.Error("Forward(-1) should error")
	}
	if _, err := h.Forward(2); err == nil {
		t.Error("Forward(2) should error")
	}
	if _, err := h.Inverse(-1); err == nil {
		t.Error("Inverse(-1) should error")
	}
	if _, err := h.Inverse(1); err == nil {
		t.Error("Inverse(1) should error")
	}
	if h.IsPresent(-1) || h.IsPresent(5) {
		t.Error("IsPresent out of range should be false")
	}
}

func TestHeaderAllPresentAllAbsent(t *testing.T) {
	all := BuildHeader([]bool{true, true, true})
	if all.NumRuns() != 1 || all.Present() != 3 {
		t.Errorf("all-present: runs=%d present=%d", all.NumRuns(), all.Present())
	}
	for i := 0; i < 3; i++ {
		if p, err := all.Forward(i); err != nil || p != i {
			t.Errorf("all-present Forward(%d) = %d, %v", i, p, err)
		}
	}
	none := BuildHeader([]bool{false, false})
	if none.Present() != 0 {
		t.Errorf("all-absent Present = %d", none.Present())
	}
	if _, err := none.Forward(0); err != ErrAbsent {
		t.Errorf("all-absent Forward err = %v", err)
	}
}

func TestHeaderBuilderMergesRuns(t *testing.T) {
	var b HeaderBuilder
	b.AppendRun(true, 2)
	b.AppendRun(true, 3)
	b.AppendRun(false, 1)
	b.AppendRun(false, 0) // no-op
	b.AppendRun(true, 4)
	h := b.Build()
	if h.NumRuns() != 3 {
		t.Errorf("NumRuns = %d, want 3", h.NumRuns())
	}
	if h.Len() != 10 || h.Present() != 9 {
		t.Errorf("Len=%d Present=%d, want 10, 9", h.Len(), h.Present())
	}
}

func TestHeaderForEachPresentRun(t *testing.T) {
	h := BuildHeader([]bool{false, true, true, false, true})
	type rec struct{ l, p, n int }
	var got []rec
	h.ForEachPresentRun(func(l, p, n int) { got = append(got, rec{l, p, n}) })
	want := []rec{{1, 0, 2}, {4, 2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEachPresentRun = %v, want %v", got, want)
	}
}

// Property: Forward and Inverse are mutual inverses over present positions.
func TestQuickHeaderForwardInverse(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%300 + 1
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = rng.Intn(4) != 0 // ~75% present
		}
		h := BuildHeader(mask)
		phys := 0
		for logical, m := range mask {
			if !m {
				if _, err := h.Forward(logical); err != ErrAbsent {
					return false
				}
				continue
			}
			p, err := h.Forward(logical)
			if err != nil || p != phys {
				return false
			}
			back, err := h.Inverse(p)
			if err != nil || back != logical {
				return false
			}
			phys++
		}
		return phys == h.Present()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeaderForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mask := make([]bool, 1<<18)
	for i := range mask {
		mask[i] = rng.Intn(10) == 0 // sparse
	}
	h := BuildHeader(mask)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = h.Forward(i % len(mask))
	}
}
