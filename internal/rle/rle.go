// Package rle implements run-length encoding of value sequences and the
// "header compression" run structure of Eggers, Olken & Shoshani (VLDB
// 1981), surveyed in Sections 6.1 and 6.2 of Shoshani's OLAP-vs-SDB paper.
//
// Two encodings are provided:
//
//   - Runs: generic run-length encoding of a column whose values repeat in
//     long stretches (the "least rapidly varying" columns of a stored cross
//     product, Figure 19 of the paper).
//
//   - Header: the alternating present/absent run sequence used by header
//     compression (Figure 21). The header stores, per run, the cumulative
//     count of logical positions and of present (non-null) positions, so
//     both the forward mapping (logical index -> physical index) and the
//     inverse mapping (physical index -> logical index) are O(log r) via
//     binary search, or via a B+tree built over the accumulated sequence.
package rle

import (
	"fmt"
	"sort"
)

// Run is one maximal stretch of equal values in an encoded column.
type Run[T comparable] struct {
	Value  T
	Length int
}

// Runs is a run-length-encoded column.
type Runs[T comparable] struct {
	runs []Run[T]
	cum  []int // lazy cumulative run lengths for At
	n    int
}

// Encode run-length-encodes vals.
func Encode[T comparable](vals []T) *Runs[T] {
	r := &Runs[T]{}
	for _, v := range vals {
		r.Append(v)
	}
	return r
}

// Append adds one value to the end of the encoded column.
func (r *Runs[T]) Append(v T) {
	if k := len(r.runs); k > 0 && r.runs[k-1].Value == v {
		r.runs[k-1].Length++
	} else {
		r.runs = append(r.runs, Run[T]{Value: v, Length: 1})
	}
	r.n++
}

// Len returns the logical (decoded) length.
func (r *Runs[T]) Len() int { return r.n }

// NumRuns returns the number of runs.
func (r *Runs[T]) NumRuns() int { return len(r.runs) }

// At returns the value at logical position i. It is O(log runs).
func (r *Runs[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("rle: index %d out of range [0,%d)", i, r.n))
	}
	// Binary search over cumulative lengths computed on the fly would be
	// O(runs); keep a cumulative cache instead.
	r.ensureCum()
	k := sort.SearchInts(r.cum, i+1)
	return r.runs[k].Value
}

// cum[i] = total length of runs[0..i]. Lazily built, invalidated by Append.
func (r *Runs[T]) ensureCum() {
	if len(r.cum) == len(r.runs) && (len(r.cum) == 0 || r.cum[len(r.cum)-1] == r.n) {
		return
	}
	r.cum = r.cum[:0]
	t := 0
	for _, run := range r.runs {
		t += run.Length
		r.cum = append(r.cum, t)
	}
}

// Decode materializes the full column.
func (r *Runs[T]) Decode() []T {
	out := make([]T, 0, r.n)
	for _, run := range r.runs {
		for i := 0; i < run.Length; i++ {
			out = append(out, run.Value)
		}
	}
	return out
}

// ForEachRun calls fn(start, run) for every run in order. start is the
// logical position of the run's first element.
func (r *Runs[T]) ForEachRun(fn func(start int, run Run[T])) {
	pos := 0
	for _, run := range r.runs {
		fn(pos, run)
		pos += run.Length
	}
}

// SizeEntries reports the number of (value,length) entries, the natural
// measure of compressed size for space accounting.
func (r *Runs[T]) SizeEntries() int { return len(r.runs) }
