// Package stats provides the "higher level statistical operations" of
// Section 5.6 of Shoshani's OLAP-vs-SDB survey — the functions that sit
// beyond a database's built-in count/sum/avg/min/max and traditionally
// forced a round-trip to an external statistical package: standard
// deviation, percentiles, trimmed means, and the time-series summaries
// (moving averages, period highs/lows) stock-market databases need
// (Section 3.2(ii)).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty data")

// ErrNaN is returned when the data (or a parameter) contains NaN. The
// order statistics here sort their input, and sort.Float64s places NaN
// unspecifiedly — a percentile of NaN-laced data would silently be
// garbage rather than loudly wrong.
var ErrNaN = errors.New("stats: data contains NaN")

// checkNaN rejects samples containing NaN.
func checkNaN(xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) {
			return fmt.Errorf("%w (index %d)", ErrNaN, i)
		}
	}
	return nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance, computed with Welford's
// single-pass algorithm for numerical stability.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var mean, m2 float64
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	return m2 / float64(len(xs)), nil
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) with linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	// NaN fails every comparison, so `p < 0 || p > 100` alone lets a NaN
	// rank slip through.
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	if err := checkNaN(xs); err != nil {
		return 0, err
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1], nil
	}
	return s[lo]*(1-frac) + s[lo+1]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// TrimmedMean returns the mean after discarding the lowest and highest
// fraction trim of the sorted data (0 <= trim < 0.5) — the paper's example
// of a statistic databases cannot express.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(trim) || trim < 0 || trim >= 0.5 {
		return 0, fmt.Errorf("stats: trim %v out of [0,0.5)", trim)
	}
	if err := checkNaN(xs); err != nil {
		return 0, err
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	cut := int(float64(len(s)) * trim)
	kept := s[cut : len(s)-cut]
	if len(kept) == 0 {
		return 0, ErrEmpty
	}
	return Mean(kept)
}

// MovingAverage returns the trailing window-mean series: out[i] is the
// mean of xs[max(0,i-window+1) .. i].
func MovingAverage(xs []float64, window int) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stats: window %d", window)
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := i + 1
		if n > window {
			n = window
		}
		out[i] = sum / float64(n)
	}
	return out, nil
}

// PeriodSummary is one period's aggregate of a time series: the open,
// close, high, low and mean of its observations — the weekly/monthly
// "averages, highs and lows" of a stock-market classification hierarchy
// over time.
type PeriodSummary struct {
	Period string
	N      int
	Open   float64
	Close  float64
	High   float64
	Low    float64
	Mean   float64
}

// Observation is one time-series point, tagged with the period (week,
// month…) it rolls up into.
type Observation struct {
	Period string
	Value  float64
}

// RollupPeriods aggregates observations (in time order) into per-period
// summaries, preserving first-seen period order.
func RollupPeriods(obs []Observation) []PeriodSummary {
	var order []string
	acc := map[string]*PeriodSummary{}
	for _, o := range obs {
		p, ok := acc[o.Period]
		if !ok {
			p = &PeriodSummary{Period: o.Period, Open: o.Value, High: math.Inf(-1), Low: math.Inf(1)}
			acc[o.Period] = p
			order = append(order, o.Period)
		}
		p.N++
		p.Close = o.Value
		if o.Value > p.High {
			p.High = o.Value
		}
		if o.Value < p.Low {
			p.Low = o.Value
		}
		p.Mean += (o.Value - p.Mean) / float64(p.N)
	}
	out := make([]PeriodSummary, 0, len(order))
	for _, name := range order {
		out = append(out, *acc[name])
	}
	return out
}
