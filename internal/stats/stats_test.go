package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || !almost(got, 2.5) {
		t.Errorf("Mean = %v, %v", got, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(v, 4) {
		t.Errorf("Variance = %v, %v", v, err)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(sd, 2) {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	// Constant data: zero variance.
	v, _ = Variance([]float64{3, 3, 3})
	if !almost(v, 0) {
		t.Errorf("constant variance = %v", v)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	// Interpolation.
	got, _ := Percentile([]float64{10, 20}, 50)
	if !almost(got, 15) {
		t.Errorf("interpolated median = %v", got)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("p>100 should fail")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	one, _ := Percentile([]float64{7}, 99)
	if one != 7 {
		t.Errorf("singleton percentile = %v", one)
	}
}

func TestMedianUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{3, 1, 2}
	m, err := Median(xs)
	if err != nil || !almost(m, 2) {
		t.Errorf("Median = %v, %v", m, err)
	}
	if xs[0] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestTrimmedMean(t *testing.T) {
	// One wild outlier; 10% trim removes it.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	plain, _ := Mean(xs)
	trimmed, err := TrimmedMean(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed >= plain {
		t.Errorf("trimmed %v not below plain %v", trimmed, plain)
	}
	if !almost(trimmed, (2+3+4+5+6+7+8+9)/8.0) {
		t.Errorf("trimmed = %v", trimmed)
	}
	if _, err := TrimmedMean(xs, 0.5); err == nil {
		t.Error("trim=0.5 should fail")
	}
	if _, err := TrimmedMean(nil, 0.1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestMovingAverage(t *testing.T) {
	ma, err := MovingAverage([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almost(ma[i], want[i]) {
			t.Errorf("ma[%d] = %v, want %v", i, ma[i], want[i])
		}
	}
	if _, err := MovingAverage(nil, 0); err == nil {
		t.Error("window=0 should fail")
	}
}

func TestRollupPeriods(t *testing.T) {
	obs := []Observation{
		{"w1", 10}, {"w1", 15}, {"w1", 5},
		{"w2", 20}, {"w2", 30},
	}
	out := RollupPeriods(obs)
	if len(out) != 2 {
		t.Fatalf("periods = %d", len(out))
	}
	w1 := out[0]
	if w1.Period != "w1" || w1.N != 3 || w1.Open != 10 || w1.Close != 5 ||
		w1.High != 15 || w1.Low != 5 || !almost(w1.Mean, 10) {
		t.Errorf("w1 = %+v", w1)
	}
	w2 := out[1]
	if w2.High != 30 || w2.Low != 20 || !almost(w2.Mean, 25) {
		t.Errorf("w2 = %+v", w2)
	}
	if len(RollupPeriods(nil)) != 0 {
		t.Error("empty rollup should be empty")
	}
}

// Property: trimmed mean lies between min and max; stddev is
// translation-invariant.
func TestQuickStatsInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%50 + 2
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		tm, err := TrimmedMean(xs, 0.2)
		if err != nil || tm < lo-1e-9 || tm > hi+1e-9 {
			return false
		}
		sd1, _ := StdDev(xs)
		shifted := make([]float64, n)
		for i := range xs {
			shifted[i] = xs[i] + 1000
		}
		sd2, _ := StdDev(shifted)
		return math.Abs(sd1-sd2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNaNRejected(t *testing.T) {
	nan := math.NaN()
	data := []float64{3, 1, nan, 2}
	if _, err := Percentile(data, 50); !errors.Is(err, ErrNaN) {
		t.Errorf("Percentile on NaN data: err = %v, want ErrNaN", err)
	}
	if _, err := Median(data); !errors.Is(err, ErrNaN) {
		t.Errorf("Median on NaN data: err = %v, want ErrNaN", err)
	}
	if _, err := TrimmedMean(data, 0.1); !errors.Is(err, ErrNaN) {
		t.Errorf("TrimmedMean on NaN data: err = %v, want ErrNaN", err)
	}
	// NaN parameters fail every range comparison, so the bounds checks
	// must test for them explicitly.
	if _, err := Percentile([]float64{1, 2}, nan); err == nil {
		t.Error("Percentile with NaN rank: no error")
	}
	if _, err := TrimmedMean([]float64{1, 2}, nan); err == nil {
		t.Error("TrimmedMean with NaN trim: no error")
	}
	// Clean data still works.
	if m, err := Median([]float64{3, 1, 2}); err != nil || m != 2 {
		t.Errorf("Median clean = %v, %v", m, err)
	}
}
