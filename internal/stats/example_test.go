package stats_test

import (
	"fmt"

	"statcube/internal/stats"
)

// Example_stockRollup rolls a daily price series up to weekly summaries —
// the stock-market classification hierarchy over time of Section 3.2(ii).
func Example_stockRollup() {
	obs := []stats.Observation{
		{Period: "w1", Value: 100}, {Period: "w1", Value: 104}, {Period: "w1", Value: 98},
		{Period: "w2", Value: 101}, {Period: "w2", Value: 107},
	}
	for _, w := range stats.RollupPeriods(obs) {
		fmt.Printf("%s open=%.0f close=%.0f high=%.0f low=%.0f\n",
			w.Period, w.Open, w.Close, w.High, w.Low)
	}
	// Output:
	// w1 open=100 close=98 high=104 low=98
	// w2 open=101 close=107 high=107 low=101
}

// ExampleTrimmedMean shows the outlier robustness that motivates pushing
// richer statistics into the database (Section 5.6).
func ExampleTrimmedMean() {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 1000}
	plain, _ := stats.Mean(xs)
	trimmed, _ := stats.TrimmedMean(xs, 0.1)
	fmt.Printf("mean=%.1f trimmed=%.1f\n", plain, trimmed)
	// Output: mean=112.6 trimmed=14.5
}
