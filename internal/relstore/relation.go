package relstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"statcube/internal/obs"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Row is one tuple.
type Row []Value

// Relation is an in-memory table: a schema plus rows in insertion order.
type Relation struct {
	name    string
	cols    []Column
	byName  map[string]int
	rows    []Row
	scanned int64 // accounting: bytes touched by scans
}

// Common relation errors.
var (
	ErrUnknownColumn = errors.New("relstore: unknown column")
	ErrSchemaClash   = errors.New("relstore: incompatible schemas")
	ErrArity         = errors.New("relstore: row arity mismatch")
)

// NewRelation creates an empty relation.
func NewRelation(name string, cols ...Column) (*Relation, error) {
	r := &Relation{name: name, cols: append([]Column(nil), cols...), byName: map[string]int{}}
	for i, c := range cols {
		if c.Name == "" {
			return nil, errors.New("relstore: column with empty name")
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("relstore: duplicate column %q", c.Name)
		}
		r.byName[c.Name] = i
	}
	if len(cols) == 0 {
		return nil, errors.New("relstore: relation with no columns")
	}
	return r, nil
}

// MustNewRelation is NewRelation for statically known schemas.
func MustNewRelation(name string, cols ...Column) *Relation {
	r, err := NewRelation(name, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Columns returns the schema.
func (r *Relation) Columns() []Column { return r.cols }

// NumRows returns the row count.
func (r *Relation) NumRows() int { return len(r.rows) }

// ColIndex returns the position of the named column.
func (r *Relation) ColIndex(name string) (int, error) {
	i, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q in %q", ErrUnknownColumn, name, r.name)
	}
	return i, nil
}

// Append adds a row; the value kinds must match the schema (NULL and ALL
// fit any column).
func (r *Relation) Append(row Row) error {
	if len(row) != len(r.cols) {
		return fmt.Errorf("%w: %d values for %d columns", ErrArity, len(row), len(r.cols))
	}
	for i, v := range row {
		if v.valid && !v.all && v.kind != r.cols[i].Kind {
			return fmt.Errorf("relstore: column %q is %v, got %v", r.cols[i].Name, r.cols[i].Kind, v.kind)
		}
	}
	r.rows = append(r.rows, append(Row(nil), row...))
	return nil
}

// MustAppend is Append that panics, for test fixtures and generators.
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// Row returns row i (shared storage; callers must not mutate).
func (r *Relation) Row(i int) Row { return r.rows[i] }

// Scan visits every row in order, charging the full row width to the scan
// accounting — the row store must read all columns of a row (the
// transposed-file comparison of Section 6.1 hinges on this). Iteration
// stops if fn returns false.
func (r *Relation) Scan(fn func(row Row) bool) {
	visited := 0
	for _, row := range r.rows {
		for _, v := range row {
			r.scanned += int64(v.width())
		}
		visited++
		if !fn(row) {
			break
		}
	}
	if obs.On() {
		rowsScanned.Add(int64(visited))
	}
}

// rowsScanned mirrors Scan volume into the process-wide registry; one
// atomic add per Scan call, never per row.
var rowsScanned = obs.Default().Counter("relstore.rows_scanned")

// ScannedBytes returns the cumulative bytes charged to scans.
func (r *Relation) ScannedBytes() int64 { return r.scanned }

// ResetScanAccounting zeroes the scan counter.
func (r *Relation) ResetScanAccounting() { r.scanned = 0 }

// SizeBytes returns the accounting size of the whole relation — the
// storage the row representation of the cross product occupies.
func (r *Relation) SizeBytes() int64 {
	var t int64
	for _, row := range r.rows {
		for _, v := range row {
			t += int64(v.width())
		}
	}
	return t
}

// Clone returns a deep copy with fresh accounting.
func (r *Relation) Clone() *Relation {
	out := MustNewRelation(r.name, r.cols...)
	for _, row := range r.rows {
		out.rows = append(out.rows, append(Row(nil), row...))
	}
	return out
}

// Sort orders rows by the named columns, ascending, ALL after values.
func (r *Relation) Sort(cols ...string) error {
	idx := make([]int, len(cols))
	for k, name := range cols {
		i, err := r.ColIndex(name)
		if err != nil {
			return err
		}
		idx[k] = i
	}
	sort.SliceStable(r.rows, func(a, b int) bool {
		ra, rb := r.rows[a], r.rows[b]
		for _, i := range idx {
			if !ra[i].Equal(rb[i]) {
				return ra[i].Less(rb[i])
			}
		}
		return false
	})
	return nil
}

// String renders the relation as an aligned text table (for the CLI and
// examples).
func (r *Relation) String() string {
	widths := make([]int, len(r.cols))
	for i, c := range r.cols {
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.rows))
	for ri, row := range r.rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[ri][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c.Name)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
