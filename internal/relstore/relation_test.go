package relstore

import (
	"strings"
	"testing"
)

// census builds the Figure 10 relation: state, county, year, race, sex,
// age-group, population, avg income.
func census(t testing.TB) *Relation {
	t.Helper()
	r := MustNewRelation("census",
		Column{"state", KString}, Column{"county", KString}, Column{"year", KInt},
		Column{"race", KString}, Column{"sex", KString}, Column{"age_group", KString},
		Column{"population", KFloat}, Column{"avg_income", KFloat})
	rows := []struct {
		st, co  string
		yr      int64
		ra, sx  string
		ag      string
		pop, ai float64
	}{
		{"Alabama", "Autauga", 1990, "white", "male", "1-10", 11763, 0},
		{"Alabama", "Autauga", 1990, "white", "male", "11-20", 9763, 3342},
		{"Alabama", "Autauga", 1990, "white", "male", "21-30", 15763, 34342},
		{"Alabama", "Autauga", 1990, "white", "female", "1-10", 8457, 0},
		{"Alabama", "Baldwin", 1990, "white", "male", "1-10", 20000, 0},
		{"Alaska", "Nome", 1990, "inuit", "female", "21-30", 1200, 28000},
		{"Alaska", "Nome", 1991, "inuit", "male", "21-30", 1250, 29000},
	}
	for _, x := range rows {
		r.MustAppend(Row{S(x.st), S(x.co), I(x.yr), S(x.ra), S(x.sx), S(x.ag), F(x.pop), F(x.ai)})
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("x"); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewRelation("x", Column{"", KInt}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewRelation("x", Column{"a", KInt}, Column{"a", KString}); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestAppendTypeChecking(t *testing.T) {
	r := MustNewRelation("x", Column{"a", KInt}, Column{"b", KString})
	if err := r.Append(Row{I(1), S("x")}); err != nil {
		t.Errorf("valid append: %v", err)
	}
	if err := r.Append(Row{S("no"), S("x")}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := r.Append(Row{I(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	// NULL and ALL fit anywhere.
	if err := r.Append(Row{Null, AllValue}); err != nil {
		t.Errorf("null/all append: %v", err)
	}
}

func TestValueBasics(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Error("string equality wrong")
	}
	if !I(3).Equal(I(3)) || I(3).Equal(F(3)) {
		t.Error("int equality wrong (cross-kind must differ)")
	}
	if !Null.Equal(Null) || Null.Equal(S("")) {
		t.Error("null equality wrong")
	}
	if !AllValue.Equal(AllValue) || AllValue.Equal(S("ALL")) {
		t.Error("ALL must differ from the string \"ALL\"")
	}
	if AllValue.String() != "ALL" || Null.String() != "NULL" {
		t.Error("display strings wrong")
	}
	if S("ALL").key() == AllValue.key() {
		t.Error("grouping keys collide between ALL marker and 'ALL' string")
	}
	if I(5).Float() != 5 || F(2.5).Float() != 2.5 {
		t.Error("Float widening wrong")
	}
	if !Null.IsNull() || S("x").IsNull() || !AllValue.IsAll() {
		t.Error("predicates wrong")
	}
}

func TestValueOrdering(t *testing.T) {
	if !S("a").Less(S("b")) || S("b").Less(S("a")) {
		t.Error("string order")
	}
	if !S("z").Less(AllValue) || AllValue.Less(S("z")) {
		t.Error("ALL must sort last")
	}
	if !Null.Less(S("")) || S("").Less(Null) {
		t.Error("NULL must sort first")
	}
	if !I(1).Less(I(2)) || !F(1.5).Less(F(2)) {
		t.Error("numeric order")
	}
}

func TestScanAccounting(t *testing.T) {
	r := census(t)
	r.Scan(func(Row) bool { return true })
	if r.ScannedBytes() != r.SizeBytes() {
		t.Errorf("full scan charged %d, size %d", r.ScannedBytes(), r.SizeBytes())
	}
	r.ResetScanAccounting()
	if r.ScannedBytes() != 0 {
		t.Error("reset failed")
	}
	// Early-terminated scan charges only visited rows.
	r.Scan(func(Row) bool { return false })
	if r.ScannedBytes() >= r.SizeBytes() {
		t.Error("early stop should charge less than full size")
	}
}

func TestSortAndString(t *testing.T) {
	r := census(t)
	if err := r.Sort("state", "county"); err != nil {
		t.Fatal(err)
	}
	if r.Row(0)[0].Str() != "Alabama" || r.Row(r.NumRows() - 1)[0].Str() != "Alaska" {
		t.Error("sort order wrong")
	}
	if err := r.Sort("nope"); err == nil {
		t.Error("unknown sort column should fail")
	}
	s := r.String()
	if !strings.Contains(s, "state") || !strings.Contains(s, "Autauga") {
		t.Errorf("String() missing data:\n%s", s)
	}
}

func TestClone(t *testing.T) {
	r := census(t)
	c := r.Clone()
	c.MustAppend(c.Row(0))
	if c.NumRows() != r.NumRows()+1 {
		t.Error("clone shares rows")
	}
}
