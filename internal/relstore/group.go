package relstore

import (
	"fmt"
	"math"
	"sort"
)

// AggOp is an aggregate function over a column.
type AggOp int

const (
	AggSum AggOp = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (a AggOp) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggOp(%d)", int(a))
	}
}

// Agg specifies one aggregate output: op over Col, named As.
type Agg struct {
	Op  AggOp
	Col string // ignored for AggCount
	As  string
}

type accumulator struct {
	sum   float64
	count int64
	min   float64
	max   float64
}

func newAccumulator() accumulator {
	return accumulator{min: math.Inf(1), max: math.Inf(-1)}
}

func (a *accumulator) observe(x float64) {
	a.sum += x
	a.count++
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

func (a *accumulator) result(op AggOp) Value {
	switch op {
	case AggSum:
		return F(a.sum)
	case AggCount:
		return I(a.count)
	case AggAvg:
		if a.count == 0 {
			return Null
		}
		return F(a.sum / float64(a.count))
	case AggMin:
		if a.count == 0 {
			return Null
		}
		return F(a.min)
	case AggMax:
		if a.count == 0 {
			return Null
		}
		return F(a.max)
	default:
		return Null
	}
}

// GroupBy computes SQL GROUP BY groupCols with the given aggregates, using
// a hash table — the standard ROLAP aggregation path. NULL values group
// together; rows whose aggregated column is NULL are skipped by the
// aggregate (SQL semantics) but still counted by COUNT(*).
func (r *Relation) GroupBy(groupCols []string, aggs []Agg) (*Relation, error) {
	gi := make([]int, len(groupCols))
	outCols := make([]Column, 0, len(groupCols)+len(aggs))
	for k, name := range groupCols {
		i, err := r.ColIndex(name)
		if err != nil {
			return nil, err
		}
		gi[k] = i
		outCols = append(outCols, r.cols[i])
	}
	ai := make([]int, len(aggs))
	for k, a := range aggs {
		if a.Op == AggCount && a.Col == "" {
			ai[k] = -1
		} else {
			i, err := r.ColIndex(a.Col)
			if err != nil {
				return nil, err
			}
			ai[k] = i
		}
		kind := KFloat
		if a.Op == AggCount {
			kind = KInt
		}
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s(%s)", a.Op, a.Col)
		}
		outCols = append(outCols, Column{Name: name, Kind: kind})
	}
	out, err := NewRelation(r.name, outCols...)
	if err != nil {
		return nil, err
	}
	type group struct {
		keyRow Row
		accs   []accumulator
	}
	groups := map[string]*group{}
	var order []string
	r.Scan(func(row Row) bool {
		keyRow := make(Row, len(gi))
		for k, i := range gi {
			keyRow[k] = row[i]
		}
		k := rowKey(keyRow)
		g, ok := groups[k]
		if !ok {
			g = &group{keyRow: keyRow, accs: make([]accumulator, len(aggs))}
			for i := range g.accs {
				g.accs[i] = newAccumulator()
			}
			groups[k] = g
			order = append(order, k)
		}
		for k2, a := range aggs {
			if a.Op == AggCount && ai[k2] == -1 {
				g.accs[k2].observe(0) // COUNT(*)
				continue
			}
			v := row[ai[k2]]
			if v.IsNull() {
				continue
			}
			g.accs[k2].observe(v.Float())
		}
		return true
	})
	for _, k := range order {
		g := groups[k]
		nr := make(Row, 0, len(outCols))
		nr = append(nr, g.keyRow...)
		for k2, a := range aggs {
			nr = append(nr, g.accs[k2].result(a.Op))
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// SortGroupBy computes the same result as GroupBy with a sort-based plan:
// sort on the grouping columns, then aggregate adjacent runs. This is the
// plan shape classic ROLAP cube pipelines share sorts across (Section 6.6
// comparisons use both).
func (r *Relation) SortGroupBy(groupCols []string, aggs []Agg) (*Relation, error) {
	sorted := r.Clone()
	if err := sorted.Sort(groupCols...); err != nil {
		return nil, err
	}
	gi := make([]int, len(groupCols))
	for k, name := range groupCols {
		i, _ := sorted.ColIndex(name)
		gi[k] = i
	}
	// Reuse GroupBy's machinery on runs: process rows in order, flushing
	// when the grouping key changes.
	outCols := make([]Column, 0, len(groupCols)+len(aggs))
	for _, i := range gi {
		outCols = append(outCols, sorted.cols[i])
	}
	ai := make([]int, len(aggs))
	for k, a := range aggs {
		if a.Op == AggCount && a.Col == "" {
			ai[k] = -1
		} else {
			i, err := sorted.ColIndex(a.Col)
			if err != nil {
				return nil, err
			}
			ai[k] = i
		}
		kind := KFloat
		if a.Op == AggCount {
			kind = KInt
		}
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s(%s)", a.Op, a.Col)
		}
		outCols = append(outCols, Column{Name: name, Kind: kind})
	}
	out, err := NewRelation(r.name, outCols...)
	if err != nil {
		return nil, err
	}
	var curKey string
	var keyRow Row
	var accs []accumulator
	flush := func() {
		if keyRow == nil {
			return
		}
		nr := make(Row, 0, len(outCols))
		nr = append(nr, keyRow...)
		for k, a := range aggs {
			nr = append(nr, accs[k].result(a.Op))
		}
		out.rows = append(out.rows, nr)
	}
	sorted.Scan(func(row Row) bool {
		kr := make(Row, len(gi))
		for k, i := range gi {
			kr[k] = row[i]
		}
		k := rowKey(kr)
		if k != curKey || keyRow == nil {
			flush()
			curKey = k
			keyRow = kr
			accs = make([]accumulator, len(aggs))
			for i := range accs {
				accs[i] = newAccumulator()
			}
		}
		for k2, a := range aggs {
			if a.Op == AggCount && ai[k2] == -1 {
				accs[k2].observe(0)
				continue
			}
			v := row[ai[k2]]
			if v.IsNull() {
				continue
			}
			accs[k2].observe(v.Float())
		}
		return true
	})
	flush()
	return out, nil
}

// sortRows orders a relation's rows deterministically by all columns; used
// to compare group-by plans in tests.
func (r *Relation) sortRows() {
	sort.SliceStable(r.rows, func(a, b int) bool {
		ra, rb := r.rows[a], r.rows[b]
		for i := range ra {
			if !ra[i].Equal(rb[i]) {
				return ra[i].Less(rb[i])
			}
		}
		return false
	})
}

// Canonical returns a copy with rows in full-column sorted order, for
// order-insensitive comparisons.
func (r *Relation) Canonical() *Relation {
	c := r.Clone()
	c.sortRows()
	return c
}

// Equal reports whether two relations have identical schemas and the same
// bag of rows (order-insensitive).
func (r *Relation) Equal(o *Relation) bool {
	if err := r.compatible(o); err != nil {
		return false
	}
	if len(r.rows) != len(o.rows) {
		return false
	}
	a, b := r.Canonical(), o.Canonical()
	for i := range a.rows {
		for j := range a.rows[i] {
			av, bv := a.rows[i][j], b.rows[i][j]
			if av.kind == KFloat && bv.kind == KFloat && av.valid && bv.valid && !av.all && !bv.all {
				if math.Abs(av.f-bv.f) > 1e-9*math.Max(1, math.Abs(av.f)) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}
