package relstore

import (
	"errors"
	"testing"
)

func TestSelectEqAndIn(t *testing.T) {
	r := census(t)
	sel, err := r.SelectEq("state", S("Alaska"))
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != 2 {
		t.Errorf("Alaska rows = %d", sel.NumRows())
	}
	in, err := r.SelectIn("age_group", S("1-10"), S("11-20"))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumRows() != 4 {
		t.Errorf("in rows = %d", in.NumRows())
	}
	if _, err := r.SelectEq("nope", S("x")); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column err = %v", err)
	}
}

func TestProjectAndDistinct(t *testing.T) {
	r := census(t)
	p, err := r.Project("state", "year")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Columns()) != 2 || p.NumRows() != r.NumRows() {
		t.Errorf("project shape = %d cols, %d rows", len(p.Columns()), p.NumRows())
	}
	d := p.Distinct()
	if d.NumRows() != 3 { // Alabama/1990, Alaska/1990, Alaska/1991
		t.Errorf("distinct rows = %d", d.NumRows())
	}
	if _, err := r.Project("nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestUnionDifference(t *testing.T) {
	a := MustNewRelation("a", Column{"x", KInt})
	b := MustNewRelation("b", Column{"x", KInt})
	for _, v := range []int64{1, 2, 3} {
		a.MustAppend(Row{I(v)})
	}
	for _, v := range []int64{3, 4} {
		b.MustAppend(Row{I(v)})
	}
	u, err := a.Union(b)
	if err != nil || u.NumRows() != 4 {
		t.Errorf("union = %d rows, %v", u.NumRows(), err)
	}
	ua, err := a.UnionAll(b)
	if err != nil || ua.NumRows() != 5 {
		t.Errorf("union all = %d rows, %v", ua.NumRows(), err)
	}
	d, err := a.Difference(b)
	if err != nil || d.NumRows() != 2 {
		t.Errorf("difference = %d rows, %v", d.NumRows(), err)
	}
	// Incompatible schemas.
	c := MustNewRelation("c", Column{"x", KString})
	if _, err := a.Union(c); !errors.Is(err, ErrSchemaClash) {
		t.Errorf("schema clash err = %v", err)
	}
}

func TestJoin(t *testing.T) {
	fact := MustNewRelation("fact", Column{"hid", KInt}, Column{"n", KFloat})
	fact.MustAppend(Row{I(1), F(10)})
	fact.MustAppend(Row{I(2), F(20)})
	fact.MustAppend(Row{I(1), F(5)})
	dim := MustNewRelation("hospital", Column{"id", KInt}, Column{"city", KString}, Column{"n", KString})
	dim.MustAppend(Row{I(1), S("berkeley"), S("alta bates")})
	dim.MustAppend(Row{I(2), S("oakland"), S("highland")})
	j, err := fact.Join(dim, "hid", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Errorf("join rows = %d", j.NumRows())
	}
	// Column name clash disambiguated with relation name.
	if _, err := j.ColIndex("hospital.n"); err != nil {
		t.Errorf("clash column missing: %v", err)
	}
	// Dangling key joins to nothing.
	fact.MustAppend(Row{I(9), F(1)})
	j2, _ := fact.Join(dim, "hid", "id")
	if j2.NumRows() != 3 {
		t.Errorf("dangling join rows = %d", j2.NumRows())
	}
	if _, err := fact.Join(dim, "nope", "id"); err == nil {
		t.Error("unknown join column should fail")
	}
}

func TestEqualCanonical(t *testing.T) {
	a := MustNewRelation("a", Column{"x", KInt}, Column{"y", KFloat})
	b := MustNewRelation("b", Column{"x", KInt}, Column{"y", KFloat})
	a.MustAppend(Row{I(1), F(1.0)})
	a.MustAppend(Row{I(2), F(2.0)})
	b.MustAppend(Row{I(2), F(2.0)})
	b.MustAppend(Row{I(1), F(1.0 + 1e-12)}) // within tolerance
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	b.MustAppend(Row{I(3), F(3)})
	if a.Equal(b) {
		t.Error("different cardinality should differ")
	}
}
