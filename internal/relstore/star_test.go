package relstore

import (
	"testing"
)

// hospitalStar builds the Figure 11 star schema: a fact table of
// (hospital.ID, procedure.ID, time.ID, number) with hospital, procedure
// and time dimension tables.
func hospitalStar(t *testing.T) *Star {
	t.Helper()
	fact := MustNewRelation("fact",
		Column{"hospital_id", KInt}, Column{"procedure_id", KInt},
		Column{"time_id", KInt}, Column{"number", KFloat})
	for _, x := range []struct {
		h, p, tm int64
		n        float64
	}{
		{1, 10, 100, 5},
		{1, 11, 100, 3},
		{2, 10, 100, 7},
		{2, 10, 101, 2},
		{3, 11, 101, 4},
	} {
		fact.MustAppend(Row{I(x.h), I(x.p), I(x.tm), F(x.n)})
	}
	hosp := MustNewRelation("hospital",
		Column{"id", KInt}, Column{"name", KString}, Column{"size", KInt},
		Column{"city", KString}, Column{"state", KString})
	hosp.MustAppend(Row{I(1), S("alta bates"), I(300), S("berkeley"), S("CA")})
	hosp.MustAppend(Row{I(2), S("highland"), I(500), S("oakland"), S("CA")})
	hosp.MustAppend(Row{I(3), S("ohsu"), I(600), S("portland"), S("OR")})
	proc := MustNewRelation("procedure",
		Column{"id", KInt}, Column{"name", KString}, Column{"type", KString}, Column{"branch", KString})
	proc.MustAppend(Row{I(10), S("x-ray"), S("imaging"), S("radiology")})
	proc.MustAppend(Row{I(11), S("biopsy"), S("surgical"), S("pathology")})
	tm := MustNewRelation("time",
		Column{"id", KInt}, Column{"day", KInt}, Column{"month", KInt}, Column{"year", KInt})
	tm.MustAppend(Row{I(100), I(13), I(11), I(1996)})
	tm.MustAppend(Row{I(101), I(14), I(11), I(1996)})
	star, err := NewStar(fact,
		DimTable{FactKey: "hospital_id", Key: "id", Table: hosp},
		DimTable{FactKey: "procedure_id", Key: "id", Table: proc},
		DimTable{FactKey: "time_id", Key: "id", Table: tm})
	if err != nil {
		t.Fatal(err)
	}
	return star
}

func TestNewStarValidation(t *testing.T) {
	if _, err := NewStar(nil); err == nil {
		t.Error("nil fact should fail")
	}
	fact := MustNewRelation("f", Column{"k", KInt})
	dim := MustNewRelation("d", Column{"id", KInt})
	if _, err := NewStar(fact, DimTable{FactKey: "nope", Key: "id", Table: dim}); err == nil {
		t.Error("bad fact key should fail")
	}
	if _, err := NewStar(fact, DimTable{FactKey: "k", Key: "nope", Table: dim}); err == nil {
		t.Error("bad dimension key should fail")
	}
	if _, err := NewStar(fact, DimTable{FactKey: "k", Key: "id", Table: nil}); err == nil {
		t.Error("nil dimension table should fail")
	}
}

func TestDenormalize(t *testing.T) {
	s := hospitalStar(t)
	wide, err := s.Denormalize()
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumRows() != s.Fact.NumRows() {
		t.Errorf("denormalized rows = %d, want %d", wide.NumRows(), s.Fact.NumRows())
	}
	// The wide relation carries the classification attributes (Figure 10's
	// redundancy): state appears once per fact row.
	if _, err := wide.ColIndex("state"); err != nil {
		t.Errorf("state missing: %v", err)
	}
	if wide.SizeBytes() <= s.Fact.SizeBytes() {
		t.Error("denormalization should inflate storage")
	}
}

func TestStarQueryGroupByDimensionAttribute(t *testing.T) {
	s := hospitalStar(t)
	res, err := s.StarQuery([]string{"city"}, []Agg{{Op: AggSum, Col: "number", As: "n"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	res.Scan(func(row Row) bool { got[row[0].Str()] = row[1].Float(); return true })
	want := map[string]float64{"berkeley": 8, "oakland": 9, "portland": 4}
	for city, n := range want {
		if got[city] != n {
			t.Errorf("%s = %v, want %v", city, got[city], n)
		}
	}
}

func TestStarQueryWithFilter(t *testing.T) {
	s := hospitalStar(t)
	// Number of procedures in CA hospitals by procedure type.
	res, err := s.StarQuery([]string{"type"},
		[]Agg{{Op: AggSum, Col: "number", As: "n"}},
		[]Filter{{Dim: 0, Col: "state", Value: S("CA")}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	res.Scan(func(row Row) bool { got[row[0].Str()] = row[1].Float(); return true })
	if got["imaging"] != 14 || got["surgical"] != 3 {
		t.Errorf("CA by type = %v", got)
	}
}

func TestStarQueryFactColumnGroup(t *testing.T) {
	s := hospitalStar(t)
	res, err := s.StarQuery([]string{"hospital_id"}, []Agg{{Op: AggCount, As: "n"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("groups = %d", res.NumRows())
	}
}

func TestStarQueryErrors(t *testing.T) {
	s := hospitalStar(t)
	if _, err := s.StarQuery([]string{"nope"}, nil, nil); err == nil {
		t.Error("unknown group column should fail")
	}
	if _, err := s.StarQuery([]string{"city"}, nil, []Filter{{Dim: 9, Col: "x", Value: Null}}); err == nil {
		t.Error("filter dim out of range should fail")
	}
}
