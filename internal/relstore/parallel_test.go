package relstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestParallelSelectMatchesSequential checks the segmented Select returns
// the same rows in the same order, with the same scan-byte accounting, as
// the sequential path.
func TestParallelSelectMatchesSequential(t *testing.T) {
	r := MustNewRelation("t",
		Column{Name: "k", Kind: KString},
		Column{Name: "v", Kind: KInt},
	)
	rng := rand.New(rand.NewSource(5))
	const n = 5000
	for i := 0; i < n; i++ {
		r.MustAppend(Row{S(fmt.Sprintf("g%d", rng.Intn(7))), I(int64(i))})
	}
	pred := func(row Row) bool { return row[0].Str() == "g3" }

	r.ResetScanAccounting()
	seq := r.Select(pred)
	seqBytes := r.ScannedBytes()

	oldW, oldMin := parWorkers, parMinRows
	parWorkers, parMinRows = 4, 0
	defer func() { parWorkers, parMinRows = oldW, oldMin }()

	r.ResetScanAccounting()
	par := r.Select(pred)
	if got := r.ScannedBytes(); got != seqBytes {
		t.Errorf("parallel scan accounting = %d bytes, sequential = %d", got, seqBytes)
	}
	if par.NumRows() != seq.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", par.NumRows(), seq.NumRows())
	}
	for i := 0; i < seq.NumRows(); i++ {
		a, b := seq.Row(i), par.Row(i)
		for c := range a {
			if !a[c].Equal(b[c]) {
				t.Fatalf("row %d col %d: %v vs %v (order not preserved)", i, c, a[c], b[c])
			}
		}
	}
}
