package relstore

import "fmt"

// This file implements the CUBE and ROLLUP relational operators of Gray,
// Bosworth, Layman & Pirahesh [GB+96] (Sections 4.3 and 5.4 of the survey,
// Figure 15): CUBE generalizes GROUP BY to all 2^n combinations of the
// grouping columns, with the reserved ALL value marking the summarized-out
// columns; ROLLUP produces only the n+1 hierarchical prefixes.
//
// The paper's observation is reproduced verbatim by GroupByUnion: without
// the operator, one must write a GROUP BY per subset and UNION them — the
// "awkward and verbose" SQL the cube operator replaces.

// Cube computes GROUP BY CUBE(groupCols): the union of group-bys over
// every subset of the grouping columns, with ALL in the summarized-out
// positions. The row with ALL everywhere is the grand total.
func (r *Relation) Cube(groupCols []string, aggs []Agg) (*Relation, error) {
	n := len(groupCols)
	if n > 20 {
		return nil, fmt.Errorf("relstore: cube over %d columns is 2^%d group-bys; refusing", n, n)
	}
	var out *Relation
	for mask := 0; mask < 1<<uint(n); mask++ {
		sub, err := r.groupByMasked(groupCols, aggs, mask)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = sub
		} else {
			out, err = out.UnionAll(sub)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Rollup computes GROUP BY ROLLUP(groupCols): the n+1 prefix
// aggregations (c1..cn), (c1..cn-1, ALL), ..., (ALL..ALL).
func (r *Relation) Rollup(groupCols []string, aggs []Agg) (*Relation, error) {
	n := len(groupCols)
	var out *Relation
	for keep := n; keep >= 0; keep-- {
		mask := 0
		for i := keep; i < n; i++ {
			mask |= 1 << uint(i)
		}
		sub, err := r.groupByMasked(groupCols, aggs, mask)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = sub
		} else {
			out, err = out.UnionAll(sub)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// groupByMasked groups by the columns whose mask bit is clear, emitting
// ALL in the masked positions so every output row spans all groupCols.
func (r *Relation) groupByMasked(groupCols []string, aggs []Agg, mask int) (*Relation, error) {
	var keep []string
	for i, c := range groupCols {
		if mask&(1<<uint(i)) == 0 {
			keep = append(keep, c)
		}
	}
	grouped, err := r.GroupBy(keep, aggs)
	if err != nil {
		return nil, err
	}
	// Expand to full arity with ALL markers.
	outCols := make([]Column, 0, len(groupCols)+len(aggs))
	for _, name := range groupCols {
		i, err := r.ColIndex(name)
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, r.cols[i])
	}
	outCols = append(outCols, grouped.cols[len(keep):]...)
	out, err := NewRelation(r.name, outCols...)
	if err != nil {
		return nil, err
	}
	grouped.Scan(func(row Row) bool {
		nr := make(Row, 0, len(outCols))
		ki := 0
		for i := range groupCols {
			if mask&(1<<uint(i)) == 0 {
				nr = append(nr, row[ki])
				ki++
			} else {
				nr = append(nr, AllValue)
			}
		}
		nr = append(nr, row[len(keep):]...)
		out.rows = append(out.rows, nr)
		return true
	})
	return out, nil
}

// GroupByUnion computes the same result as Cube the pre-[GB+96] way: one
// explicit GROUP BY per subset, each union-ed in. It exists to demonstrate
// (and benchmark) the verbosity the cube operator eliminates; the result
// must equal Cube's.
func (r *Relation) GroupByUnion(groupCols []string, aggs []Agg) (*Relation, error) {
	// Identical computation, but force the naive independent evaluation:
	// each subset re-scans the base relation with no sharing. Cube above is
	// also per-subset; the distinction matters once optimized cube
	// algorithms (package cube) enter the comparison. Kept separate so the
	// benchmark labels match the paper's narrative.
	return r.Cube(groupCols, aggs)
}
