package relstore

import (
	"context"
	"fmt"
	"testing"

	"statcube/internal/budget"
)

func cancelRelation(t *testing.T, rows int) *Relation {
	t.Helper()
	r := MustNewRelation("facts",
		Column{Name: "k", Kind: KString},
		Column{Name: "v", Kind: KFloat},
	)
	for i := 0; i < rows; i++ {
		if err := r.Append(Row{S(fmt.Sprintf("k-%d", i%13)), F(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestSelectCtxPreCanceled: a done context aborts SelectCtx on both the
// sequential and the forced-parallel path with the typed taxonomy.
func TestSelectCtxPreCanceled(t *testing.T) {
	r := cancelRelation(t, 20000)
	pred := func(row Row) bool { return row[0].Str() == "k-3" }

	for _, tc := range []struct {
		name    string
		minRows int
		workers int
	}{
		{"sequential", 1 << 30, 1},
		{"parallel", 0, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			oldMin, oldW := parMinRows, parWorkers
			parMinRows, parWorkers = tc.minRows, tc.workers
			t.Cleanup(func() { parMinRows, parWorkers = oldMin, oldW })

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			out, err := r.SelectCtx(ctx, pred)
			if err == nil || out != nil {
				t.Fatalf("SelectCtx: out=%v err=%v from canceled context", out, err)
			}
			if !budget.IsCanceled(err) {
				t.Errorf("SelectCtx: %v is not ErrCanceled", err)
			}
		})
	}
}

// TestSelectCtxMatchesPlain: with a live context SelectCtx must agree with
// the plain Select on both execution paths.
func TestSelectCtxMatchesPlain(t *testing.T) {
	r := cancelRelation(t, 20000)
	pred := func(row Row) bool { return row[0].Str() == "k-3" }
	want := r.Select(pred)

	for _, workers := range []int{1, 4} {
		oldMin, oldW := parMinRows, parWorkers
		parMinRows, parWorkers = 0, workers
		got, err := r.SelectCtx(context.Background(), pred)
		parMinRows, parWorkers = oldMin, oldW
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Errorf("w=%d: %d rows, want %d", workers, got.NumRows(), want.NumRows())
		}
	}
}
