package relstore

import (
	"context"
	"errors"
	"testing"

	"statcube/internal/fault"
)

// TestSelectCtxFaultHook: an armed relstore.scan injector fails the scan
// with the typed error and no relation; disarmed, results are unchanged.
func TestSelectCtxFaultHook(t *testing.T) {
	r := MustNewRelation("t",
		Column{Name: "k", Kind: KString},
		Column{Name: "v", Kind: KFloat})
	for i := 0; i < 50; i++ {
		r.MustAppend(Row{S("a"), F(float64(i))})
	}
	inj := fault.New(fault.Schedule{Seed: 9, Rate: 1, Mode: fault.Error,
		Points: []string{fault.PointRelstoreScan}})
	ctx := fault.WithInjector(context.Background(), inj)
	out, err := r.SelectCtx(ctx, func(Row) bool { return true })
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if out != nil {
		t.Fatal("failed scan leaked a partial relation")
	}
	got, err := r.SelectCtx(context.Background(), func(Row) bool { return true })
	if err != nil || got.NumRows() != 50 {
		t.Fatalf("clean scan: len %d err %v", got.NumRows(), err)
	}
}
