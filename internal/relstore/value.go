// Package relstore is a small typed in-memory relational engine — the
// ROLAP substrate of the reproduction. It provides the relational
// representation of a statistical object (Figure 10 of Shoshani's
// OLAP-vs-SDB survey), the star schema of fact and dimension tables
// (Figure 11, [MicroStrategy]), the reserved ALL value and the CUBE /
// ROLLUP operators of Gray et al. [GB+96] (Figure 15), and the relational
// algebra (select, project, union, join, group-by) that the statistical
// algebra completeness argument of [MRS92] (Figure 16) is checked against.
//
// Rows are fixed-width in accounting terms: every value occupies one slot
// of 8 bytes plus string bytes, so the I/O comparisons against transposed
// files (package colstore) measure the row-store's obligation to read
// every column of every row.
package relstore

import (
	"fmt"
	"math"
	"strconv"
)

// Kind is a column's data type.
type Kind int

const (
	KString Kind = iota
	KInt
	KFloat
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KString:
		return "string"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one typed cell of a relation. The zero Value is the SQL NULL.
// All is the reserved marker value of [GB+96], representable in every
// column kind, used by CUBE and ROLLUP output.
type Value struct {
	kind  Kind
	s     string
	i     int64
	f     float64
	valid bool // false = NULL
	all   bool // the reserved ALL marker
}

// Null is the SQL NULL value.
var Null = Value{}

// AllValue is the reserved ALL value of [GB+96].
var AllValue = Value{valid: true, all: true}

// S makes a string value.
func S(s string) Value { return Value{kind: KString, s: s, valid: true} }

// I makes an integer value.
func I(i int64) Value { return Value{kind: KInt, i: i, valid: true} }

// F makes a float value.
func F(f float64) Value { return Value{kind: KFloat, f: f, valid: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return !v.valid }

// IsAll reports whether the value is the reserved ALL marker.
func (v Value) IsAll() bool { return v.all }

// Str returns the string contents (zero value for non-strings).
func (v Value) Str() string { return v.s }

// Int returns the integer contents.
func (v Value) Int() int64 { return v.i }

// Float returns the numeric contents, widening integers.
func (v Value) Float() float64 {
	if v.kind == KInt {
		return float64(v.i)
	}
	return v.f
}

// Equal reports deep equality; NULL equals NULL here (grouping semantics),
// and ALL equals only ALL.
func (v Value) Equal(o Value) bool {
	if v.all || o.all {
		return v.all == o.all
	}
	if !v.valid || !o.valid {
		return v.valid == o.valid
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KString:
		return v.s == o.s
	case KInt:
		return v.i == o.i
	default:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	}
}

// Less orders values within one kind; ALL sorts after everything, NULL
// before everything — the order CUBE output is reported in.
func (v Value) Less(o Value) bool {
	switch {
	case v.all:
		return false
	case o.all:
		return true
	case !v.valid:
		return o.valid
	case !o.valid:
		return false
	}
	if v.kind != o.kind {
		return v.kind < o.kind
	}
	switch v.kind {
	case KString:
		return v.s < o.s
	case KInt:
		return v.i < o.i
	default:
		return v.f < o.f
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch {
	case v.all:
		return "ALL"
	case !v.valid:
		return "NULL"
	}
	switch v.kind {
	case KString:
		return v.s
	case KInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	}
}

// key renders the value as a grouping key component. Distinct from String
// so "ALL" the string and ALL the marker cannot collide.
func (v Value) key() string {
	switch {
	case v.all:
		return "\x01ALL"
	case !v.valid:
		return "\x01NULL"
	}
	switch v.kind {
	case KString:
		return "s" + v.s
	case KInt:
		return "i" + strconv.FormatInt(v.i, 10)
	default:
		return "f" + strconv.FormatFloat(v.f, 'b', -1, 64)
	}
}

// width returns the accounting width in bytes (8-byte slot plus string
// payload), used by the I/O cost model.
func (v Value) width() int {
	if v.kind == KString {
		return 8 + len(v.s)
	}
	return 8
}
