package relstore

import (
	"context"
	"fmt"
	"strings"

	"statcube/internal/budget"
	"statcube/internal/fault"
	"statcube/internal/obs"
	"statcube/internal/parallel"
)

// This file implements the classical relational algebra over Relations:
// selection, projection, set union, difference, cartesian product and
// equijoin. These are the operators the statistical algebra is proved
// complete against in [MRS92] (Figure 16), and the building blocks of the
// ROLAP query plans benchmarked in Section 6.

// parMinRows is the row threshold below which Select stays sequential
// (tests lower it to force the parallel path); parWorkers caps the
// fan-out, 0 meaning GOMAXPROCS.
var (
	parMinRows = parallel.MinWork
	parWorkers = 0
)

// Select returns the rows satisfying pred, preserving order. Large
// relations are filtered in per-segment partial scans whose results —
// matched rows and scan-byte tallies alike — are merged in segment order,
// so the output and the accounting are identical to a sequential scan.
// pred must therefore be safe for concurrent calls; the pure predicates
// used throughout (column comparisons, set membership) all qualify.
func (r *Relation) Select(pred func(Row) bool) *Relation {
	out, _ := r.SelectCtx(context.Background(), pred)
	return out
}

// SelectCtx is Select under a context: the scan polls ctx between row
// segments (sequential path) or aborts between fan-out segments (parallel
// path), returning the typed budget.ErrCanceled and no relation. Entry
// is the relstore.scan fault-injection hook — chaos tests fail the scan
// here as a stand-in for an unreadable base table.
func (r *Relation) SelectCtx(ctx context.Context, pred func(Row) bool) (*Relation, error) {
	if err := fault.Hit(ctx, fault.PointRelstoreScan); err != nil {
		return nil, err
	}
	out := MustNewRelation(r.name, r.cols...)
	n := len(r.rows)
	w := parallel.Workers(parWorkers, n)
	if w <= 1 || n < parMinRows {
		tick := budget.NewTicker(ctx, 0)
		var tickErr error
		r.Scan(func(row Row) bool {
			if tickErr = tick.Tick(); tickErr != nil {
				return false
			}
			if pred(row) {
				out.rows = append(out.rows, row)
			}
			return true
		})
		if tickErr != nil {
			return nil, tickErr
		}
		return out, nil
	}
	type seg struct {
		rows    []Row
		scanned int64
	}
	per := (n + w - 1) / w
	st := parallel.Stage{Name: "relstore.select", Workers: w, Ctx: ctx}
	parts, err := parallel.Map(st, (n+per-1)/per, func(s int) (seg, error) {
		lo, hi := s*per, (s+1)*per
		if hi > n {
			hi = n
		}
		var sg seg
		for i := lo; i < hi; i++ {
			row := r.rows[i]
			for _, v := range row {
				sg.scanned += int64(v.width())
			}
			if pred(row) {
				sg.rows = append(sg.rows, row)
			}
		}
		return sg, nil
	})
	if err != nil {
		return nil, err
	}
	for _, sg := range parts {
		r.scanned += sg.scanned
		out.rows = append(out.rows, sg.rows...)
	}
	if obs.On() {
		rowsScanned.Add(int64(n))
	}
	return out, nil
}

// SelectEq selects rows whose column equals the value.
func (r *Relation) SelectEq(col string, v Value) (*Relation, error) {
	i, err := r.ColIndex(col)
	if err != nil {
		return nil, err
	}
	return r.Select(func(row Row) bool { return row[i].Equal(v) }), nil
}

// SelectIn selects rows whose column equals any of the values.
func (r *Relation) SelectIn(col string, vals ...Value) (*Relation, error) {
	i, err := r.ColIndex(col)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, v := range vals {
		set[v.key()] = true
	}
	return r.Select(func(row Row) bool { return set[row[i].key()] }), nil
}

// Project keeps the named columns, preserving duplicates (SQL bag
// semantics). Use Distinct afterwards for set semantics.
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	outCols := make([]Column, len(cols))
	for k, name := range cols {
		i, err := r.ColIndex(name)
		if err != nil {
			return nil, err
		}
		idx[k] = i
		outCols[k] = r.cols[i]
	}
	out, err := NewRelation(r.name, outCols...)
	if err != nil {
		return nil, err
	}
	r.Scan(func(row Row) bool {
		nr := make(Row, len(idx))
		for k, i := range idx {
			nr[k] = row[i]
		}
		out.rows = append(out.rows, nr)
		return true
	})
	return out, nil
}

// Distinct removes duplicate rows, keeping first occurrences.
func (r *Relation) Distinct() *Relation {
	out := MustNewRelation(r.name, r.cols...)
	seen := map[string]bool{}
	r.Scan(func(row Row) bool {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, row)
		}
		return true
	})
	return out
}

func rowKey(row Row) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.key())
		b.WriteByte('\x00')
	}
	return b.String()
}

// compatible checks union-compatibility (same arity and kinds).
func (r *Relation) compatible(o *Relation) error {
	if len(r.cols) != len(o.cols) {
		return fmt.Errorf("%w: %d vs %d columns", ErrSchemaClash, len(r.cols), len(o.cols))
	}
	for i := range r.cols {
		if r.cols[i].Kind != o.cols[i].Kind {
			return fmt.Errorf("%w: column %d is %v vs %v", ErrSchemaClash, i, r.cols[i].Kind, o.cols[i].Kind)
		}
	}
	return nil
}

// Union returns the set union (duplicates removed).
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	out := MustNewRelation(r.name, r.cols...)
	seen := map[string]bool{}
	add := func(row Row) bool {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, row)
		}
		return true
	}
	r.Scan(add)
	o.Scan(add)
	return out, nil
}

// UnionAll returns the bag union (duplicates kept).
func (r *Relation) UnionAll(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	out := MustNewRelation(r.name, r.cols...)
	r.Scan(func(row Row) bool { out.rows = append(out.rows, row); return true })
	o.Scan(func(row Row) bool { out.rows = append(out.rows, row); return true })
	return out, nil
}

// Difference returns the rows of r not present in o (set semantics).
func (r *Relation) Difference(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	drop := map[string]bool{}
	o.Scan(func(row Row) bool { drop[rowKey(row)] = true; return true })
	out := MustNewRelation(r.name, r.cols...)
	seen := map[string]bool{}
	r.Scan(func(row Row) bool {
		k := rowKey(row)
		if !drop[k] && !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, row)
		}
		return true
	})
	return out, nil
}

// Join computes the equijoin of r and o on leftCol = rightCol using a hash
// table on the smaller input. Output columns are r's then o's, with o's
// join column dropped and clashes disambiguated with the relation name.
func (r *Relation) Join(o *Relation, leftCol, rightCol string) (*Relation, error) {
	li, err := r.ColIndex(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := o.ColIndex(rightCol)
	if err != nil {
		return nil, err
	}
	var outCols []Column
	outCols = append(outCols, r.cols...)
	names := map[string]bool{}
	for _, c := range r.cols {
		names[c.Name] = true
	}
	var keepRight []int
	for i, c := range o.cols {
		if i == ri {
			continue
		}
		name := c.Name
		if names[name] {
			name = o.name + "." + name
		}
		names[name] = true
		outCols = append(outCols, Column{Name: name, Kind: c.Kind})
		keepRight = append(keepRight, i)
	}
	out, err := NewRelation(r.name+"⋈"+o.name, outCols...)
	if err != nil {
		return nil, err
	}
	// Build on the right input.
	build := map[string][]Row{}
	o.Scan(func(row Row) bool {
		build[row[ri].key()] = append(build[row[ri].key()], row)
		return true
	})
	r.Scan(func(row Row) bool {
		for _, m := range build[row[li].key()] {
			nr := make(Row, 0, len(outCols))
			nr = append(nr, row...)
			for _, i := range keepRight {
				nr = append(nr, m[i])
			}
			out.rows = append(out.rows, nr)
		}
		return true
	})
	return out, nil
}
