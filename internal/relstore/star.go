package relstore

import (
	"errors"
	"fmt"
)

// This file implements the star schema of Figure 11 ([MicroStrategy]'s
// ROLAP model): a central fact table whose foreign keys reference one
// dimension table per dimension; each dimension table carries the category
// attributes of that dimension's classification structure (e.g. hospital →
// city → state).
//
// StarQuery is the canonical ROLAP plan: join the fact table with the
// needed dimension tables, filter on dimension attributes, group by the
// requested attributes and aggregate the fact measure.

// DimTable binds a dimension table to the fact-table foreign key that
// references it.
type DimTable struct {
	FactKey string    // fact-table column holding the foreign key
	Key     string    // dimension-table primary key column
	Table   *Relation // the dimension table
}

// Star is a star schema: a fact table plus its dimension tables.
type Star struct {
	Fact *Relation
	Dims []DimTable
}

// NewStar validates and assembles a star schema.
func NewStar(fact *Relation, dims ...DimTable) (*Star, error) {
	if fact == nil {
		return nil, errors.New("relstore: nil fact table")
	}
	for _, d := range dims {
		if _, err := fact.ColIndex(d.FactKey); err != nil {
			return nil, fmt.Errorf("relstore: fact key: %w", err)
		}
		if d.Table == nil {
			return nil, errors.New("relstore: nil dimension table")
		}
		if _, err := d.Table.ColIndex(d.Key); err != nil {
			return nil, fmt.Errorf("relstore: dimension key: %w", err)
		}
	}
	return &Star{Fact: fact, Dims: dims}, nil
}

// Denormalize joins the fact table with every dimension table, producing
// the wide single-relation representation of Figure 10 — the storage shape
// whose redundancy the paper criticizes (and the transposed-file benches
// measure).
func (s *Star) Denormalize() (*Relation, error) {
	out := s.Fact
	var err error
	for _, d := range s.Dims {
		out, err = out.Join(d.Table, d.FactKey, d.Key)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter restricts one dimension attribute to a value.
type Filter struct {
	Dim   int // index into Star.Dims
	Col   string
	Value Value
}

// StarQuery runs the canonical ROLAP aggregation: filter dimension tables,
// join the qualifying keys into the fact table, group by the requested
// dimension attributes and aggregate.
//
// groupBy names columns of dimension tables (qualified by dimension index
// via the Dims slice order — the first dimension table owning the name
// wins) or of the fact table itself.
func (s *Star) StarQuery(groupBy []string, aggs []Agg, filters []Filter) (*Relation, error) {
	// Start from the fact table; semi-join each filtered dimension first
	// (cheapest order for our sizes), then join dimensions contributing
	// grouping columns.
	needDim := make([]bool, len(s.Dims))
	for _, f := range filters {
		if f.Dim < 0 || f.Dim >= len(s.Dims) {
			return nil, fmt.Errorf("relstore: filter dimension %d out of range", f.Dim)
		}
		needDim[f.Dim] = true
	}
	for _, g := range groupBy {
		if _, err := s.Fact.ColIndex(g); err == nil {
			continue
		}
		found := false
		for i, d := range s.Dims {
			if _, err := d.Table.ColIndex(g); err == nil {
				needDim[i] = true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %q in star schema", ErrUnknownColumn, g)
		}
	}
	cur := s.Fact
	for i, d := range s.Dims {
		if !needDim[i] {
			continue
		}
		dt := d.Table
		for _, f := range filters {
			if f.Dim != i {
				continue
			}
			var err error
			dt, err = dt.SelectEq(f.Col, f.Value)
			if err != nil {
				return nil, err
			}
		}
		var err error
		cur, err = cur.Join(dt, d.FactKey, d.Key)
		if err != nil {
			return nil, err
		}
	}
	return cur.GroupBy(groupBy, aggs)
}
