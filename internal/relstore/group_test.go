package relstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupByBasics(t *testing.T) {
	r := census(t)
	g, err := r.GroupBy([]string{"state"}, []Agg{
		{Op: AggSum, Col: "population", As: "pop"},
		{Op: AggCount, As: "n"},
		{Op: AggAvg, Col: "avg_income", As: "inc"},
		{Op: AggMin, Col: "population", As: "lo"},
		{Op: AggMax, Col: "population", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	byState := map[string]Row{}
	g.Scan(func(row Row) bool { byState[row[0].Str()] = row; return true })
	al := byState["Alabama"]
	if al[1].Float() != 11763+9763+15763+8457+20000 {
		t.Errorf("Alabama pop = %v", al[1])
	}
	if al[2].Int() != 5 {
		t.Errorf("Alabama count = %v", al[2])
	}
	if al[4].Float() != 8457 || al[5].Float() != 20000 {
		t.Errorf("Alabama min/max = %v/%v", al[4], al[5])
	}
	ak := byState["Alaska"]
	if math.Abs(ak[3].Float()-28500) > 1e-9 {
		t.Errorf("Alaska avg income = %v", ak[3])
	}
}

func TestGroupByNullHandling(t *testing.T) {
	r := MustNewRelation("x", Column{"g", KString}, Column{"v", KFloat})
	r.MustAppend(Row{S("a"), F(1)})
	r.MustAppend(Row{S("a"), Null}) // skipped by SUM/AVG, counted by COUNT(*)
	r.MustAppend(Row{Null, F(5)})   // NULL groups together
	r.MustAppend(Row{Null, F(7)})
	g, err := r.GroupBy([]string{"g"}, []Agg{
		{Op: AggSum, Col: "v", As: "s"},
		{Op: AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	g.Scan(func(row Row) bool {
		if row[0].IsNull() {
			if row[1].Float() != 12 || row[2].Int() != 2 {
				t.Errorf("null group = %v", row)
			}
		} else {
			if row[1].Float() != 1 || row[2].Int() != 2 {
				t.Errorf("a group = %v", row)
			}
		}
		return true
	})
}

func TestGroupByEmptyGroupColsIsGrandTotal(t *testing.T) {
	r := census(t)
	g, err := r.GroupBy(nil, []Agg{{Op: AggSum, Col: "population", As: "pop"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 1 {
		t.Fatalf("grand total rows = %d", g.NumRows())
	}
	if g.Row(0)[0].Float() != 11763+9763+15763+8457+20000+1200+1250 {
		t.Errorf("grand total = %v", g.Row(0)[0])
	}
}

func TestGroupByErrors(t *testing.T) {
	r := census(t)
	if _, err := r.GroupBy([]string{"nope"}, nil); err == nil {
		t.Error("unknown group column should fail")
	}
	if _, err := r.GroupBy([]string{"state"}, []Agg{{Op: AggSum, Col: "nope"}}); err == nil {
		t.Error("unknown agg column should fail")
	}
}

func TestSortGroupByMatchesHashGroupBy(t *testing.T) {
	r := census(t)
	aggs := []Agg{{Op: AggSum, Col: "population", As: "pop"}, {Op: AggCount, As: "n"}}
	h, err := r.GroupBy([]string{"state", "sex"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.SortGroupBy([]string{"state", "sex"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(s) {
		t.Errorf("plans disagree:\nhash:\n%s\nsort:\n%s", h, s)
	}
}

// Property: hash and sort group-by agree on random data.
func TestQuickGroupByPlansAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := MustNewRelation("x", Column{"a", KString}, Column{"b", KInt}, Column{"v", KFloat})
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			r.MustAppend(Row{
				S(string(rune('a' + rng.Intn(4)))),
				I(int64(rng.Intn(3))),
				F(float64(rng.Intn(100))),
			})
		}
		aggs := []Agg{
			{Op: AggSum, Col: "v", As: "s"},
			{Op: AggMin, Col: "v", As: "lo"},
			{Op: AggMax, Col: "v", As: "hi"},
			{Op: AggCount, As: "n"},
		}
		h, err1 := r.GroupBy([]string{"a", "b"}, aggs)
		s, err2 := r.SortGroupBy([]string{"a", "b"}, aggs)
		if err1 != nil || err2 != nil {
			return false
		}
		return h.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCubeFigure15(t *testing.T) {
	r := census(t)
	c, err := r.Cube([]string{"state", "sex"}, []Agg{{Op: AggSum, Col: "population", As: "pop"}})
	if err != nil {
		t.Fatal(err)
	}
	// Groups: (state,sex): 4 combos present; (state,ALL): 2; (ALL,sex): 2; (ALL,ALL): 1.
	if c.NumRows() != 9 {
		t.Fatalf("cube rows = %d, want 9:\n%s", c.NumRows(), c)
	}
	var grand float64
	found := false
	c.Scan(func(row Row) bool {
		if row[0].IsAll() && row[1].IsAll() {
			grand = row[2].Float()
			found = true
		}
		return true
	})
	if !found || grand != 11763+9763+15763+8457+20000+1200+1250 {
		t.Errorf("grand total = %v (found=%v)", grand, found)
	}
}

func TestRollupPrefixes(t *testing.T) {
	r := census(t)
	ru, err := r.Rollup([]string{"state", "county"}, []Agg{{Op: AggSum, Col: "population", As: "pop"}})
	if err != nil {
		t.Fatal(err)
	}
	// (state,county): 3 combos; (state,ALL): 2; (ALL,ALL): 1 => 6 rows.
	if ru.NumRows() != 6 {
		t.Fatalf("rollup rows = %d:\n%s", ru.NumRows(), ru)
	}
	// No (ALL, county) rows in a rollup.
	ru.Scan(func(row Row) bool {
		if row[0].IsAll() && !row[1].IsAll() {
			t.Errorf("rollup emitted (ALL, %v)", row[1])
		}
		return true
	})
}

func TestCubeMatchesGroupByUnion(t *testing.T) {
	r := census(t)
	aggs := []Agg{{Op: AggSum, Col: "population", As: "pop"}}
	a, err := r.Cube([]string{"state", "race", "sex"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.GroupByUnion([]string{"state", "race", "sex"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("cube and explicit group-by union disagree")
	}
}

func TestCubeRefusesTooManyColumns(t *testing.T) {
	cols := make([]Column, 21)
	names := make([]string, 21)
	for i := range cols {
		names[i] = string(rune('a' + i))
		cols[i] = Column{names[i], KInt}
	}
	r := MustNewRelation("big", cols...)
	if _, err := r.Cube(names, nil); err == nil {
		t.Error("21-column cube should refuse")
	}
}

// Property: ROLLUP's rows are a subset of CUBE's rows (the prefix
// aggregations are among the 2^n), and both agree on shared groups.
func TestQuickRollupSubsetOfCube(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := MustNewRelation("x",
			Column{"a", KString}, Column{"b", KString}, Column{"v", KFloat})
		n := int(rawN)%80 + 1
		for i := 0; i < n; i++ {
			r.MustAppend(Row{
				S(string(rune('a' + rng.Intn(3)))),
				S(string(rune('x' + rng.Intn(2)))),
				F(float64(rng.Intn(50))),
			})
		}
		aggs := []Agg{{Op: AggSum, Col: "v", As: "s"}}
		cu, err1 := r.Cube([]string{"a", "b"}, aggs)
		ru, err2 := r.Rollup([]string{"a", "b"}, aggs)
		if err1 != nil || err2 != nil {
			return false
		}
		cubeRows := map[string]float64{}
		cu.Scan(func(row Row) bool {
			cubeRows[row[0].key()+"|"+row[1].key()] = row[2].Float()
			return true
		})
		ok := true
		ru.Scan(func(row Row) bool {
			v, found := cubeRows[row[0].key()+"|"+row[1].key()]
			if !found || math.Abs(v-row[2].Float()) > 1e-9 {
				ok = false
				return false
			}
			return true
		})
		return ok && ru.NumRows() <= cu.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
