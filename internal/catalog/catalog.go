// Package catalog is a directory-driven catalog of statistical objects, in
// the spirit of Chan & Shoshani's SUBJECT system [CS81] — "a directory
// driven system for organizing and accessing large statistical databases"
// (Section 4.1 of the survey traces the graph models back to it). Large
// statistical collections hold hundreds of summary datasets; analysts find
// them by what they measure and how they are classified, not by file name.
//
// The catalog indexes registered objects by measure name, dimension name
// and classification level, and organizes them under a subject-category
// tree (energy → production → crude oil), supporting the directory-style
// navigation SUBJECT pioneered.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"statcube/internal/core"
)

// Common catalog errors.
var (
	ErrDuplicate = errors.New("catalog: dataset already registered")
	ErrNotFound  = errors.New("catalog: dataset not found")
)

// Entry is one catalogued dataset.
type Entry struct {
	Name        string
	Subject     string // slash-separated subject path, e.g. "economy/retail"
	Description string
	Object      *core.StatObject
}

// Catalog is a searchable directory of statistical objects; safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	byMeas  map[string][]string // measure name -> dataset names
	byDim   map[string][]string // dimension name -> dataset names
	byLevel map[string][]string // classification level name -> dataset names
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		entries: map[string]*Entry{},
		byMeas:  map[string][]string{},
		byDim:   map[string][]string{},
		byLevel: map[string][]string{},
	}
}

// Register adds a dataset to the directory.
func (c *Catalog) Register(e Entry) error {
	if e.Name == "" {
		return errors.New("catalog: entry with empty name")
	}
	if e.Object == nil {
		return errors.New("catalog: entry with nil object")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[e.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, e.Name)
	}
	stored := e
	c.entries[e.Name] = &stored
	for _, m := range e.Object.Measures() {
		c.byMeas[m.Name] = append(c.byMeas[m.Name], e.Name)
	}
	for _, d := range e.Object.Schema().Dimensions() {
		c.byDim[d.Name] = append(c.byDim[d.Name], e.Name)
		for li := 0; li < d.Class.NumLevels(); li++ {
			lv := d.Class.Level(li).Name
			c.byLevel[lv] = append(c.byLevel[lv], e.Name)
		}
	}
	return nil
}

// Lookup returns the named dataset.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// ByMeasure returns the names of datasets carrying the measure, sorted.
func (c *Catalog) ByMeasure(measure string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sortedCopy(c.byMeas[measure])
}

// ByDimension returns the names of datasets with the dimension, sorted.
func (c *Catalog) ByDimension(dim string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sortedCopy(c.byDim[dim])
}

// ByLevel returns the names of datasets whose classifications include the
// level name (e.g. every dataset summarizable to "state"), sorted.
func (c *Catalog) ByLevel(level string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sortedCopy(c.byLevel[level])
}

// Subjects returns the subject tree as sorted unique paths.
func (c *Catalog) Subjects() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := map[string]bool{}
	for _, e := range c.entries {
		if e.Subject != "" {
			set[e.Subject] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// UnderSubject returns dataset names whose subject path equals prefix or
// nests below it, sorted.
func (c *Catalog) UnderSubject(prefix string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for name, e := range c.entries {
		if e.Subject == prefix || strings.HasPrefix(e.Subject, prefix+"/") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Describe renders a directory listing of one dataset: its subject, its
// conceptual structure and its size.
func (c *Catalog) Describe(name string) (string, error) {
	e, err := c.Lookup(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", e.Name)
	if e.Subject != "" {
		fmt.Fprintf(&b, "  [%s]", e.Subject)
	}
	b.WriteByte('\n')
	if e.Description != "" {
		fmt.Fprintf(&b, "%s\n", e.Description)
	}
	b.WriteString(e.Object.String())
	fmt.Fprintf(&b, "Cells: %d\n", e.Object.Cells())
	return b.String(), nil
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
