package catalog

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"statcube/internal/core"
	"statcube/internal/hierarchy"
	"statcube/internal/schema"
)

func sampleObject(t *testing.T, measure string, dims ...string) *core.StatObject {
	t.Helper()
	var sdims []schema.Dimension
	for _, d := range dims {
		if d == "geo" {
			cls := hierarchy.NewBuilder("geo", "county", "c1", "c2").
				Level("state", "s1").
				Parent("c1", "s1").Parent("c2", "s1").
				MustBuild()
			sdims = append(sdims, schema.Dimension{Name: d, Class: cls})
			continue
		}
		sdims = append(sdims, schema.Dimension{Name: d, Class: hierarchy.FlatClassification(d, "a", "b")})
	}
	sch := schema.MustNew("x", sdims...)
	return core.MustNew(sch, []core.Measure{{Name: measure, Func: core.Sum, Type: core.Flow}})
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	o := sampleObject(t, "sales", "geo", "year")
	if err := c.Register(Entry{Name: "retail-96", Subject: "economy/retail", Object: o}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	e, err := c.Lookup("retail-96")
	if err != nil || e.Object != o {
		t.Errorf("Lookup = %+v, %v", e, err)
	}
	if _, err := c.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	// Validation.
	if err := c.Register(Entry{Name: "retail-96", Object: o}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	if err := c.Register(Entry{Object: o}); err == nil {
		t.Error("empty name should fail")
	}
	if err := c.Register(Entry{Name: "x"}); err == nil {
		t.Error("nil object should fail")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	_ = c.Register(Entry{Name: "a", Subject: "economy/retail", Object: sampleObject(t, "sales", "geo", "year")})
	_ = c.Register(Entry{Name: "b", Subject: "economy/energy", Object: sampleObject(t, "production", "geo")})
	_ = c.Register(Entry{Name: "c", Subject: "health", Object: sampleObject(t, "sales", "year")})
	if got := c.ByMeasure("sales"); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("ByMeasure = %v", got)
	}
	if got := c.ByDimension("geo"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ByDimension = %v", got)
	}
	// Level search finds anything summarizable to "state".
	if got := c.ByLevel("state"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ByLevel = %v", got)
	}
	if got := c.ByMeasure("nope"); len(got) != 0 {
		t.Errorf("missing measure = %v", got)
	}
}

func TestSubjectTree(t *testing.T) {
	c := New()
	_ = c.Register(Entry{Name: "a", Subject: "economy/retail", Object: sampleObject(t, "m", "year")})
	_ = c.Register(Entry{Name: "b", Subject: "economy/energy/oil", Object: sampleObject(t, "m", "year")})
	_ = c.Register(Entry{Name: "c", Subject: "health", Object: sampleObject(t, "m", "year")})
	subjects := c.Subjects()
	if len(subjects) != 3 {
		t.Errorf("Subjects = %v", subjects)
	}
	if got := c.UnderSubject("economy"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("UnderSubject(economy) = %v", got)
	}
	if got := c.UnderSubject("economy/energy"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("UnderSubject(economy/energy) = %v", got)
	}
	if got := c.UnderSubject("econ"); len(got) != 0 {
		t.Errorf("prefix must respect path segments: %v", got)
	}
}

func TestDescribe(t *testing.T) {
	c := New()
	_ = c.Register(Entry{
		Name: "retail-96", Subject: "economy/retail",
		Description: "1996 store transactions",
		Object:      sampleObject(t, "sales", "geo", "year"),
	})
	s, err := c.Describe("retail-96")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"retail-96", "[economy/retail]", "1996 store transactions", "Summary measure: sales", "Cells: 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
	if _, err := c.Describe("nope"); err == nil {
		t.Error("missing dataset should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			_ = c.Register(Entry{Name: name, Object: sampleObject(t, "m", "year")})
			c.ByMeasure("m")
			c.Subjects()
			_, _ = c.Lookup(name)
		}(i)
	}
	wg.Wait()
	if c.Len() != 8 {
		t.Errorf("Len = %d", c.Len())
	}
}
