// Package workload generates the synthetic datasets the benchmarks and
// examples run on, standing in for the proprietary data of the paper's
// application areas (Section 3): census micro-data with a geographic
// classification hierarchy, retail transactions with Zipf-popular products
// over a store/city and day/month hierarchy, stock-market time series over
// weekday trading days, and HMO visits with a non-strict multi-specialty
// physician classification.
//
// Every generator is seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"statcube/internal/core"
	"statcube/internal/cube"
	"statcube/internal/hierarchy"
	"statcube/internal/privacy"
	"statcube/internal/relstore"
	"statcube/internal/schema"
	"statcube/internal/stats"
)

// Census bundles a census micro-data set in every representation the
// benches need: a relation, a privacy table over the same individuals, and
// the geographic classification.
type Census struct {
	Micro   *relstore.Relation
	Privacy *privacy.Table
	Geo     *hierarchy.Classification // county --> state
	Schema  *schema.Graph             // geo(county), race, sex, age_group
	Races   []string
	Sexes   []string
	Ages    []string
}

// NewCensus generates nPeople individuals across nStates states with
// countiesPerState counties each.
func NewCensus(nPeople, nStates, countiesPerState int, seed int64) (*Census, error) {
	if nPeople <= 0 || nStates <= 0 || countiesPerState <= 0 {
		return nil, fmt.Errorf("workload: invalid census parameters %d/%d/%d", nPeople, nStates, countiesPerState)
	}
	rng := rand.New(rand.NewSource(seed))
	states := make([]string, nStates)
	var counties []string
	countyState := map[string]string{}
	for s := range states {
		states[s] = fmt.Sprintf("state-%02d", s)
		for c := 0; c < countiesPerState; c++ {
			county := fmt.Sprintf("county-%02d-%02d", s, c)
			counties = append(counties, county)
			countyState[county] = states[s]
		}
	}
	gb := hierarchy.NewBuilder("geo", "county", counties...).Level("state", states...)
	for _, county := range counties {
		gb.Parent(county, countyState[county])
	}
	geo, err := gb.Build()
	if err != nil {
		return nil, err
	}
	races := []string{"white", "black", "asian", "native", "other"}
	sexes := []string{"male", "female"}
	ages := []string{"0-17", "18-34", "35-49", "50-64", "65-120"}
	rel := relstore.MustNewRelation("census",
		relstore.Column{Name: "county", Kind: relstore.KString},
		relstore.Column{Name: "state", Kind: relstore.KString},
		relstore.Column{Name: "race", Kind: relstore.KString},
		relstore.Column{Name: "sex", Kind: relstore.KString},
		relstore.Column{Name: "age_group", Kind: relstore.KString},
		relstore.Column{Name: "income", Kind: relstore.KFloat},
	)
	pCounty := make([]string, nPeople)
	pState := make([]string, nPeople)
	pRace := make([]string, nPeople)
	pSex := make([]string, nPeople)
	pAge := make([]string, nPeople)
	pIncome := make([]float64, nPeople)
	for i := 0; i < nPeople; i++ {
		county := counties[rng.Intn(len(counties))]
		pCounty[i] = county
		pState[i] = countyState[county]
		pRace[i] = races[rng.Intn(len(races))]
		pSex[i] = sexes[rng.Intn(2)]
		pAge[i] = ages[rng.Intn(len(ages))]
		pIncome[i] = 15000 + float64(rng.Intn(120000))
		rel.MustAppend(relstore.Row{
			relstore.S(pCounty[i]), relstore.S(pState[i]), relstore.S(pRace[i]),
			relstore.S(pSex[i]), relstore.S(pAge[i]), relstore.F(pIncome[i]),
		})
	}
	pt := privacy.NewTable(nPeople)
	for name, col := range map[string][]string{
		"county": pCounty, "state": pState, "race": pRace, "sex": pSex, "age_group": pAge,
	} {
		if err := pt.AddCat(name, col); err != nil {
			return nil, err
		}
	}
	if err := pt.AddNum("income", pIncome); err != nil {
		return nil, err
	}
	sch, err := schema.New("census",
		schema.Dimension{Name: "county", Class: geo},
		schema.Dimension{Name: "race", Class: hierarchy.FlatClassification("race", races...)},
		schema.Dimension{Name: "sex", Class: hierarchy.FlatClassification("sex", sexes...)},
		schema.Dimension{Name: "age_group", Class: hierarchy.FlatClassification("age_group", ages...)},
	)
	if err != nil {
		return nil, err
	}
	return &Census{Micro: rel, Privacy: pt, Geo: geo, Schema: sch, Races: races, Sexes: sexes, Ages: ages}, nil
}

// Retail bundles a retail-transactions dataset: the coded fact input for
// cube construction, the uncoded relation, the assembled statistical
// object, and the classifications.
type Retail struct {
	Input        *cube.Input
	Relation     *relstore.Relation
	Object       *core.StatObject
	ProductClass *hierarchy.Classification // product --> category (primary)
	PriceClass   *hierarchy.Classification // product --> price band (alternative, §3.2(i))
	StoreClass   *hierarchy.Classification // store --> city
	DayClass     *hierarchy.Classification // day --> month
	DimNames     []string
	Products     []string
	Stores       []string
	Days         []string
}

// NewRetail generates nTx transactions over nProducts products (Zipf
// popularity), nStores stores spread over cities of up to 4 stores, and
// nDays days grouped into 30-day months.
func NewRetail(nProducts, nStores, nDays, nTx int, seed int64) (*Retail, error) {
	if nProducts <= 0 || nStores <= 0 || nDays <= 0 || nTx < 0 {
		return nil, fmt.Errorf("workload: invalid retail parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	r := &Retail{DimNames: []string{"product", "store", "day"}}

	r.Products = make([]string, nProducts)
	nCats := (nProducts + 9) / 10
	cats := make([]string, nCats)
	for c := range cats {
		cats[c] = fmt.Sprintf("category-%02d", c)
	}
	pb := func() *hierarchy.Builder {
		for p := range r.Products {
			r.Products[p] = fmt.Sprintf("product-%04d", p)
		}
		b := hierarchy.NewBuilder("product", "product", r.Products...).Level("category", cats...)
		for p, name := range r.Products {
			b.Parent(name, cats[p/10])
		}
		return b
	}()
	var err error
	r.ProductClass, err = pb.Build()
	if err != nil {
		return nil, err
	}
	// The alternative classification of the same products — by price band
	// instead of category ("multiple classifications over the same
	// dimension", Section 3.2(i)).
	bands := []string{"budget", "mid-range", "premium"}
	pc := hierarchy.NewBuilder("by-price", "product", r.Products...).
		Level("price band", bands...)
	for p, name := range r.Products {
		pc.Parent(name, bands[p%len(bands)])
	}
	r.PriceClass, err = pc.Build()
	if err != nil {
		return nil, err
	}

	r.Stores = make([]string, nStores)
	nCities := (nStores + 3) / 4
	cities := make([]string, nCities)
	for c := range cities {
		cities[c] = fmt.Sprintf("city-%02d", c)
	}
	sb := hierarchy.NewBuilder("store", "store", func() []string {
		for s := range r.Stores {
			r.Stores[s] = fmt.Sprintf("store-%03d", s)
		}
		return r.Stores
	}()...).Level("city", cities...)
	for s, name := range r.Stores {
		sb.Parent(name, cities[s/4])
	}
	sb.IDDependent()
	r.StoreClass, err = sb.Build()
	if err != nil {
		return nil, err
	}

	r.Days = make([]string, nDays)
	nMonths := (nDays + 29) / 30
	months := make([]string, nMonths)
	for m := range months {
		months[m] = fmt.Sprintf("month-%02d", m)
	}
	db := hierarchy.NewBuilder("day", "day", func() []string {
		for d := range r.Days {
			r.Days[d] = fmt.Sprintf("day-%04d", d)
		}
		return r.Days
	}()...).Level("month", months...)
	for d, name := range r.Days {
		db.Parent(name, months[d/30])
	}
	db.IDDependent()
	r.DayClass, err = db.Build()
	if err != nil {
		return nil, err
	}

	sch, err := schema.New("retail sales",
		schema.Dimension{Name: "product", Class: r.ProductClass},
		schema.Dimension{Name: "store", Class: r.StoreClass},
		schema.Dimension{Name: "day", Class: r.DayClass, Temporal: true},
	)
	if err != nil {
		return nil, err
	}
	r.Object, err = core.New(sch, []core.Measure{{Name: "quantity sold", Unit: "dollars", Func: core.Sum, Type: core.Flow}})
	if err != nil {
		return nil, err
	}
	r.Relation = relstore.MustNewRelation("sales",
		relstore.Column{Name: "product", Kind: relstore.KString},
		relstore.Column{Name: "store", Kind: relstore.KString},
		relstore.Column{Name: "day", Kind: relstore.KString},
		relstore.Column{Name: "amount", Kind: relstore.KFloat},
	)
	r.Input = &cube.Input{Card: []int{nProducts, nStores, nDays}}
	var zipf *rand.Zipf
	if nProducts > 1 {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(nProducts-1))
	}
	for i := 0; i < nTx; i++ {
		p := 0
		if zipf != nil {
			p = int(zipf.Uint64())
		}
		s := rng.Intn(nStores)
		d := rng.Intn(nDays)
		amount := float64(1 + rng.Intn(200))
		r.Input.Rows = append(r.Input.Rows, []int{p, s, d})
		r.Input.Vals = append(r.Input.Vals, amount)
		r.Relation.MustAppend(relstore.Row{
			relstore.S(r.Products[p]), relstore.S(r.Stores[s]), relstore.S(r.Days[d]), relstore.F(amount),
		})
		if err := r.Object.ObserveAt([]int{p, s, d}, map[string]float64{"quantity sold": amount}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// StockSeries is a random-walk daily price series over trading weekdays,
// tagged with week and month period labels for rollups.
type StockSeries struct {
	Days   []string // "w03-d2" style labels
	Prices []float64
	Weekly []stats.Observation
	Month  []stats.Observation
}

// NewStockSeries generates weeks × 5 trading days of prices.
func NewStockSeries(weeks int, seed int64) (*StockSeries, error) {
	if weeks <= 0 {
		return nil, fmt.Errorf("workload: weeks = %d", weeks)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &StockSeries{}
	price := 100.0
	for w := 0; w < weeks; w++ {
		for d := 0; d < 5; d++ { // weekdays only, as the paper notes
			price += rng.NormFloat64() * 2
			if price < 1 {
				price = 1
			}
			s.Days = append(s.Days, fmt.Sprintf("w%03d-d%d", w, d))
			s.Prices = append(s.Prices, price)
			s.Weekly = append(s.Weekly, stats.Observation{Period: fmt.Sprintf("w%03d", w), Value: price})
			s.Month = append(s.Month, stats.Observation{Period: fmt.Sprintf("m%02d", w/4), Value: price})
		}
	}
	return s, nil
}

// HMO bundles an HMO visits dataset whose physician classification is
// non-strict (multi-specialty physicians), the Section 3.2(iii) hazard.
type HMO struct {
	Object      *core.StatObject
	Physicians  *hierarchy.Classification // physician --> specialty (non-strict)
	Specialties []string
	MultiCount  int // physicians carrying two specialties
}

// NewHMO generates nPhysicians physicians (a fraction with two
// specialties) and nVisits visits with costs.
func NewHMO(nPhysicians, nVisits int, multiFraction float64, seed int64) (*HMO, error) {
	if nPhysicians <= 0 || nVisits < 0 || multiFraction < 0 || multiFraction > 1 {
		return nil, fmt.Errorf("workload: invalid HMO parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	specs := []string{"oncology", "pulmonology", "cardiology", "neurology"}
	phys := make([]string, nPhysicians)
	for i := range phys {
		phys[i] = fmt.Sprintf("dr-%04d", i)
	}
	b := hierarchy.NewBuilder("physician", "physician", phys...).Level("specialty", specs...)
	multi := 0
	for i, p := range phys {
		first := rng.Intn(len(specs))
		b.Parent(p, specs[first])
		if rng.Float64() < multiFraction {
			second := (first + 1 + rng.Intn(len(specs)-1)) % len(specs)
			b.Parent(p, specs[second])
			multi++
		}
		_ = i
	}
	cls, err := b.Build()
	if err != nil {
		return nil, err
	}
	years := []string{"1995", "1996"}
	sch, err := schema.New("hmo visits",
		schema.Dimension{Name: "physician", Class: cls},
		schema.Dimension{Name: "year", Class: hierarchy.FlatClassification("year", years...), Temporal: true},
	)
	if err != nil {
		return nil, err
	}
	obj, err := core.New(sch, []core.Measure{
		{Name: "cost", Unit: "dollars", Func: core.Sum, Type: core.Flow},
		{Name: "visits", Func: core.Count, Type: core.Flow},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nVisits; i++ {
		err := obj.Observe(map[string]core.Value{
			"physician": phys[rng.Intn(nPhysicians)],
			"year":      years[rng.Intn(2)],
		}, map[string]float64{"cost": float64(50 + rng.Intn(2000))})
		if err != nil {
			return nil, err
		}
	}
	return &HMO{Object: obj, Physicians: cls, Specialties: specs, MultiCount: multi}, nil
}

// CubeInputFromObject codes a statistical object's cells into a cube
// fact table: each dimension's leaf values index in classification
// order, one row per stored cell, the first measure as the value. The
// CLIs use it to snapshot an object as a cube and to code appended
// facts through the same dictionary, so offline loads and the daemon's
// write path share one lineage.
func CubeInputFromObject(obj *core.StatObject) (*cube.Input, error) {
	dims := obj.Schema().Dimensions()
	if len(dims) == 0 {
		return nil, fmt.Errorf("workload: object has no dimensions to snapshot")
	}
	in := &cube.Input{Card: make([]int, len(dims))}
	code := make([]map[core.Value]int, len(dims))
	for i, d := range dims {
		vals := d.Class.LeafLevel().Values
		in.Card[i] = len(vals)
		code[i] = make(map[core.Value]int, len(vals))
		for j, v := range vals {
			code[i][v] = j
		}
	}
	var ferr error
	obj.ForEach(func(coords []core.Value, vals []float64) bool {
		row := make([]int, len(dims))
		for i := range dims {
			c, ok := code[i][coords[i]]
			if !ok {
				ferr = fmt.Errorf("workload: cell value %q not at dimension %s's leaf level", coords[i], dims[i].Name)
				return false
			}
			row[i] = c
		}
		in.Rows = append(in.Rows, row)
		in.Vals = append(in.Vals, vals[0])
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return in, in.Validate()
}
