package workload

import (
	"statcube/internal/core"
	"statcube/internal/hierarchy"
	"statcube/internal/schema"
)

// NewEmployment assembles the paper's running example (Figure 1):
// employment in California classified by sex, year and profession, with
// the profession dimension carrying the professional-class rollup of
// Figure 5. Alongside the Stock measure "employment" it carries a second,
// Flow measure "total income" (dollars paid over the year — the measure
// Figure 13's automatic-aggregation example queries), so the demo
// exercises multi-measure objects and both summarizability types [LS97]:
// employment (Stock) cannot be summed across the temporal year dimension,
// total income (Flow) can. The year 1980 extends the printed figure so
// queries like "SHOW total income WHERE year = 1980" have data to hit.
func NewEmployment() (*core.StatObject, error) {
	prof, err := hierarchy.NewBuilder("profession", "profession",
		"chemical engineer", "civil engineer",
		"junior secretary", "executive secretary",
		"elementary teacher", "high school teacher").
		Level("professional class", "engineer", "secretary", "teacher").
		Parent("chemical engineer", "engineer").
		Parent("civil engineer", "engineer").
		Parent("junior secretary", "secretary").
		Parent("executive secretary", "secretary").
		Parent("elementary teacher", "teacher").
		Parent("high school teacher", "teacher").
		Build()
	if err != nil {
		return nil, err
	}
	sch, err := schema.New("employment in california",
		schema.Dimension{Name: "sex", Class: hierarchy.FlatClassification("sex", "male", "female")},
		schema.Dimension{Name: "year",
			Class:    hierarchy.FlatClassification("year", "1980", "1991", "1992"),
			Temporal: true},
		schema.Dimension{Name: "profession", Class: prof},
	)
	if err != nil {
		return nil, err
	}
	obj, err := core.New(sch, []core.Measure{
		{Name: "employment", Func: core.Sum, Type: core.Stock},
		{Name: "total income", Unit: "dollars", Func: core.Sum, Type: core.Flow},
	})
	if err != nil {
		return nil, err
	}
	// Average annual salary per profession and year; total income per cell
	// is employment × salary.
	salary := map[string]map[string]float64{
		"1980": {"chemical engineer": 28000, "civil engineer": 26000,
			"junior secretary": 12000, "executive secretary": 16000,
			"elementary teacher": 15000, "high school teacher": 17000},
		"1991": {"chemical engineer": 52000, "civil engineer": 48000,
			"junior secretary": 21000, "executive secretary": 28000,
			"elementary teacher": 27000, "high school teacher": 30000},
		"1992": {"chemical engineer": 54000, "civil engineer": 50000,
			"junior secretary": 22000, "executive secretary": 29000,
			"elementary teacher": 28000, "high school teacher": 31000},
	}
	for _, c := range []struct {
		sex, year, prof string
		employment      float64
	}{
		{"male", "1980", "chemical engineer", 152000},
		{"male", "1980", "civil engineer", 198400},
		{"male", "1980", "junior secretary", 489200},
		{"male", "1980", "executive secretary", 131900},
		{"male", "1980", "elementary teacher", 187230},
		{"male", "1980", "high school teacher", 104610},
		{"male", "1991", "chemical engineer", 197700},
		{"male", "1991", "civil engineer", 241100},
		{"male", "1991", "junior secretary", 534300},
		{"male", "1991", "executive secretary", 154100},
		{"male", "1991", "elementary teacher", 212943},
		{"male", "1991", "high school teacher", 123740},
		{"male", "1992", "chemical engineer", 209900},
		{"male", "1992", "civil engineer", 278000},
		{"male", "1992", "junior secretary", 542100},
		{"male", "1992", "executive secretary", 169800},
		{"male", "1992", "elementary teacher", 213521},
		{"male", "1992", "high school teacher", 145766},
		{"female", "1980", "chemical engineer", 9100},
		{"female", "1980", "civil engineer", 41800},
		{"female", "1980", "junior secretary", 601700},
		{"female", "1980", "executive secretary", 141000},
		{"female", "1980", "elementary teacher", 196480},
		{"female", "1980", "high school teacher", 231070},
		{"female", "1991", "chemical engineer", 25800},
		{"female", "1991", "civil engineer", 112000},
		{"female", "1991", "junior secretary", 667300},
		{"female", "1991", "executive secretary", 162300},
		{"female", "1991", "elementary teacher", 216071},
		{"female", "1991", "high school teacher", 275123},
		{"female", "1992", "chemical engineer", 28900},
		{"female", "1992", "civil engineer", 127600},
		{"female", "1992", "junior secretary", 692500},
		{"female", "1992", "executive secretary", 174400},
		{"female", "1992", "elementary teacher", 217520},
		{"female", "1992", "high school teacher", 299344},
	} {
		err := obj.SetCell(map[string]core.Value{
			"sex": c.sex, "year": c.year, "profession": c.prof,
		}, map[string]float64{
			"employment":   c.employment,
			"total income": c.employment * salary[c.year][c.prof],
		})
		if err != nil {
			return nil, err
		}
	}
	return obj, nil
}
