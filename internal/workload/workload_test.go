package workload

import (
	"testing"
)

func TestNewCensus(t *testing.T) {
	c, err := NewCensus(1000, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Micro.NumRows() != 1000 || c.Privacy.N() != 1000 {
		t.Errorf("rows = %d, privacy n = %d", c.Micro.NumRows(), c.Privacy.N())
	}
	if got := len(c.Geo.LeafLevel().Values); got != 12 {
		t.Errorf("counties = %d", got)
	}
	if err := c.Geo.CheckSummarizable(0, 1); err != nil {
		t.Errorf("geo should be summarizable: %v", err)
	}
	// Determinism.
	c2, _ := NewCensus(1000, 4, 3, 1)
	if c.Micro.Row(0)[5].Float() != c2.Micro.Row(0)[5].Float() {
		t.Error("census not deterministic")
	}
	if _, err := NewCensus(0, 1, 1, 1); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestNewRetail(t *testing.T) {
	r, err := NewRetail(50, 8, 60, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Input.Rows) != 2000 || r.Relation.NumRows() != 2000 {
		t.Errorf("tx = %d/%d", len(r.Input.Rows), r.Relation.NumRows())
	}
	if err := r.Input.Validate(); err != nil {
		t.Errorf("coded input invalid: %v", err)
	}
	// Object total equals the generated amounts.
	objTotal, err := r.Object.Total("quantity sold")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range r.Input.Vals {
		sum += v
	}
	if objTotal != sum {
		t.Errorf("object total %v != input sum %v", objTotal, sum)
	}
	// Hierarchies are strict/complete and roll up cleanly.
	if _, err := r.Object.SAggregate("store", "city"); err != nil {
		t.Errorf("store rollup: %v", err)
	}
	if _, err := r.Object.SAggregate("product", "category"); err != nil {
		t.Errorf("product rollup: %v", err)
	}
	// Zipf popularity: product 0 should dominate.
	count0 := 0
	for _, row := range r.Input.Rows {
		if row[0] == 0 {
			count0++
		}
	}
	if count0 < 2000/10 {
		t.Errorf("product-0 share = %d, expected Zipf head", count0)
	}
}

func TestNewStockSeries(t *testing.T) {
	s, err := NewStockSeries(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Prices) != 40 || len(s.Days) != 40 {
		t.Errorf("days = %d", len(s.Prices))
	}
	for _, p := range s.Prices {
		if p < 1 {
			t.Errorf("price %v below floor", p)
		}
	}
	if s.Weekly[0].Period != "w000" || s.Month[39].Period != "m01" {
		t.Errorf("period labels wrong: %v %v", s.Weekly[0], s.Month[39])
	}
	if _, err := NewStockSeries(0, 1); err == nil {
		t.Error("weeks=0 should fail")
	}
}

func TestNewHMO(t *testing.T) {
	h, err := NewHMO(100, 5000, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.MultiCount == 0 {
		t.Error("no multi-specialty physicians generated")
	}
	if h.Physicians.IsStrictEdge(0) {
		t.Error("physician classification should be non-strict")
	}
	// The rollup must be refused — the whole point of the workload.
	if _, err := h.Object.SAggregate("physician", "specialty"); err == nil {
		t.Error("non-strict rollup should be rejected")
	}
	visits, err := h.Object.Total("visits")
	if err != nil || visits != 5000 {
		t.Errorf("visits = %v, %v", visits, err)
	}
	// Zero multi-fraction gives a strict classification.
	h2, err := NewHMO(50, 100, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Physicians.IsStrictEdge(0) {
		t.Error("zero multi-fraction should be strict")
	}
	if _, err := h2.Object.SAggregate("physician", "specialty"); err != nil {
		t.Errorf("strict rollup should work: %v", err)
	}
}
