package writer_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"statcube/internal/budget"
	"statcube/internal/cube"
	"statcube/internal/fault"
	"statcube/internal/snapshot"
	"statcube/internal/writer"
)

// The write path's chaos suite: under seeded fault injection at every
// writer hook (writer.append, writer.delta, writer.publish) and the
// snapshot hooks inside the save (snapshot.write, snapshot.rename), a
// load must end in exactly one of two states — published and
// byte-identical to its fault-free outcome, or failed with a typed
// error while the previous generation stays authoritative for readers
// and on disk. No third state: no partial delta visible, no torn file
// loadable, no appended row lost.
//
// Seeds come from the fixed {1, 7, 42} matrix plus CHAOS_SEED (the CI
// chaos job runs one per matrix entry); replay any failure with
//
//	CHAOS_SEED=<seed> go test -race -run Chaos ./internal/writer/

// chaosSeeds returns the seed matrix: CHAOS_SEED if set, else defaults.
func chaosSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return []uint64{seed}
	}
	return []uint64{1, 7, 42}
}

// writerPoints is every hook a load crosses, writer-owned and
// snapshot-owned alike.
var writerPoints = []string{
	fault.PointWriterAppend,
	fault.PointWriterDelta,
	fault.PointWriterPublish,
	fault.PointSnapshotWrite,
	fault.PointSnapshotRename,
}

// chaosBatches cuts the deterministic load sequence every chaos run
// replays: 8 loads of 40 rows over a 4×3×2 cube.
func chaosBatches(seed int64) (base *cube.Input, rows [][][]int, vals [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	base = &cube.Input{Card: []int{4, 3, 2}}
	for i := 0; i < 300; i++ {
		base.Rows = append(base.Rows, []int{rng.Intn(4), rng.Intn(3), rng.Intn(2)})
		base.Vals = append(base.Vals, float64(rng.Intn(1000)))
	}
	for l := 0; l < 8; l++ {
		var r [][]int
		var v []float64
		for i := 0; i < 40; i++ {
			r = append(r, []int{rng.Intn(4), rng.Intn(3), rng.Intn(2)})
			v = append(v, float64(rng.Intn(1000)))
		}
		rows = append(rows, r)
		vals = append(vals, v)
	}
	return base, rows, vals
}

// faultFreeOutcome runs the whole load sequence with no injector and
// returns the final set — the state every chaos run must converge to.
func faultFreeOutcome(t *testing.T, masks []int) *cube.MaterializedSet {
	t.Helper()
	base, rows, vals := chaosBatches(99)
	all := &cube.Input{Card: base.Card}
	all.Rows = append(all.Rows, base.Rows...)
	all.Vals = append(all.Vals, base.Vals...)
	for i := range rows {
		all.Rows = append(all.Rows, rows[i]...)
		all.Vals = append(all.Vals, vals[i]...)
	}
	want, err := cube.Materialize(all, masks)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestChaosWriterConverges: with error-mode injection at every write
// hook and unlimited retries, the load sequence converges — every
// batch eventually publishes, and the final set (in memory AND
// reloaded from disk) is bit-identical to the fault-free outcome.
func TestChaosWriterConverges(t *testing.T) {
	masks := []int{0b011, 0b101}
	want := faultFreeOutcome(t, masks)
	for _, seed := range chaosSeeds(t) {
		for _, rate := range []float64{0.05, 0.3} {
			t.Run(fmt.Sprintf("seed=%d/rate=%v", seed, rate), func(t *testing.T) {
				inj := fault.New(fault.Schedule{Seed: seed, Points: writerPoints, Rate: rate, Mode: fault.Error, MaxInjections: 40})
				ctx := fault.WithInjector(context.Background(), inj)
				st, err := snapshot.OpenStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				base, rows, vals := chaosBatches(99)
				// Open seeds the store fault-free (Open has no retry loop —
				// a failed open is the operator's error); the load sequence
				// then runs entirely under injection.
				w, err := writer.Open(context.Background(), writer.Config{
					Store: st, Name: "facts", Base: base, Masks: masks,
					MaxRetries: 100, Backoff: time.Nanosecond, Sleep: func(time.Duration) {},
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range rows {
					if err := w.Append(ctx, rows[i], vals[i]); err != nil {
						t.Fatalf("seed %d load %d: append: %v", seed, i, err)
					}
					if _, err := w.Flush(ctx); err != nil {
						t.Fatalf("seed %d load %d: flush did not converge: %v", seed, i, err)
					}
				}
				h := w.Acquire()
				defer h.Release()
				if !h.Set().Identical(want) {
					t.Fatalf("seed %d rate %v: converged set differs from fault-free outcome (%d injections)", seed, rate, inj.Injected())
				}
				// The durable state agrees: a restart loads the same bytes.
				loaded, _, err := cube.LoadMaterialized(context.Background(), st, "facts")
				if err != nil {
					t.Fatalf("seed %d: reload after chaos: %v", seed, err)
				}
				if !loaded.Identical(want) {
					t.Fatalf("seed %d rate %v: reloaded set differs from fault-free outcome", seed, rate)
				}
			})
		}
	}
}

// TestChaosFailedLoadInvisible: a load that exhausts its retries leaves
// no trace a reader can see — the acquired handle's answers don't
// change, the published generation doesn't advance, the batch stays
// buffered, and the store still reloads the previous generation.
func TestChaosFailedLoadInvisible(t *testing.T) {
	masks := []int{0b110}
	for _, seed := range chaosSeeds(t) {
		for _, point := range writerPoints {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, point), func(t *testing.T) {
				st, err := snapshot.OpenStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				base, rows, vals := chaosBatches(99)
				w, err := writer.Open(context.Background(), writer.Config{
					Store: st, Name: "facts", Base: base, Masks: masks,
					MaxRetries: 1, Backoff: time.Nanosecond, Sleep: func(time.Duration) {},
				})
				if err != nil {
					t.Fatal(err)
				}
				before := w.Acquire()
				defer before.Release()
				beforeGen := w.Generation()

				// Error mode fires at Hit-style hooks; the snapshot.write
				// stream hook corrupts writes instead, so a torn write is
				// its failure shape.
				mode := fault.Error
				if point == fault.PointSnapshotWrite {
					mode = fault.ShortWrite
				}
				inj := fault.New(fault.Schedule{Seed: seed, Points: []string{point}, Rate: 1, Mode: mode})
				ctx := fault.WithInjector(context.Background(), inj)
				if err := w.Append(ctx, rows[0], vals[0]); err != nil {
					t.Fatal(err)
				}
				_, err = w.Flush(ctx)
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("flush = %v, want injected failure", err)
				}
				if got := w.Generation(); got != beforeGen {
					t.Fatalf("generation advanced %d -> %d on a failed load", beforeGen, got)
				}
				after := w.Acquire()
				defer after.Release()
				if after.Generation() != beforeGen || !after.Set().Identical(before.Set()) {
					t.Fatal("failed load changed the reader-visible set")
				}
				if got := w.Pending(); got != len(rows[0]) {
					t.Fatalf("pending = %d after failed load, want %d (no row lost)", got, len(rows[0]))
				}
				// Restart-style recovery: the store's newest loadable
				// generation is still the pre-fault one. A publish-window
				// fault legitimately leaves a newer complete generation on
				// disk (durable but unpublished) — identical content either
				// way is the invariant.
				loaded, _, err := cube.LoadMaterialized(context.Background(), st, "facts")
				if err != nil {
					t.Fatal(err)
				}
				if point == fault.PointWriterPublish {
					staged := before.Set().Clone()
					if _, err := staged.AppendRows(rows[0], vals[0]); err != nil {
						t.Fatal(err)
					}
					if !loaded.Identical(before.Set()) && !loaded.Identical(staged) {
						t.Fatal("disk state after publish-window fault is neither the previous nor the staged generation")
					}
				} else if !loaded.Identical(before.Set()) {
					t.Fatal("disk state changed after a failed load")
				}
			})
		}
	}
}

// TestChaosTornWrite: short-write (torn file) and bit-flip injection in
// the snapshot writer produces either a clean failure with the previous
// generation authoritative, or (for a fault the checksums catch only on
// read) a reload that recovers past the damaged generation. Every load
// is then retried fault-free and the final state must be byte-identical
// to the fault-free outcome.
func TestChaosTornWrite(t *testing.T) {
	masks := []int{0b001}
	want := faultFreeOutcome(t, masks)
	for _, seed := range chaosSeeds(t) {
		for _, mode := range []fault.Mode{fault.ShortWrite, fault.BitFlip} {
			t.Run(fmt.Sprintf("seed=%d/%v", seed, mode), func(t *testing.T) {
				st, err := snapshot.OpenStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				base, rows, vals := chaosBatches(99)
				w, err := writer.Open(context.Background(), writer.Config{
					Store: st, Name: "facts", Base: base, Masks: masks,
					MaxRetries: 0, Backoff: time.Nanosecond, Sleep: func(time.Duration) {},
				})
				if err != nil {
					t.Fatal(err)
				}
				inj := fault.New(fault.Schedule{Seed: seed, Points: []string{fault.PointSnapshotWrite}, Rate: 0.5, Mode: mode, MaxInjections: 6})
				faulty := fault.WithInjector(context.Background(), inj)
				clean := context.Background()
				for i := range rows {
					if err := w.Append(clean, rows[i], vals[i]); err != nil {
						t.Fatal(err)
					}
					if _, err := w.Flush(faulty); err != nil {
						// Torn write detected at save time: batch is back in
						// the buffer; publish it with a clean context.
						if _, err := w.Flush(clean); err != nil {
							t.Fatalf("seed %d load %d: clean retry failed: %v", seed, i, err)
						}
					}
				}
				h := w.Acquire()
				defer h.Release()
				if !h.Set().Identical(want) {
					t.Fatalf("seed %d %v: final set differs from fault-free outcome", seed, mode)
				}
				// A bit-flip can slip past the save (detected only by CRC on
				// read); recovery must still land on a generation identical
				// to some published state — here, the newest loadable one
				// must match the in-memory set or an earlier prefix is
				// recovered. Reload and require decodability.
				loaded, gen, err := cube.LoadMaterialized(clean, st, "facts")
				if err != nil {
					t.Fatalf("seed %d %v: reload: %v", seed, mode, err)
				}
				if gen == w.Generation() && !loaded.Identical(h.Set()) {
					t.Fatalf("seed %d %v: newest generation decodes to different bytes than published", seed, mode)
				}
			})
		}
	}
}

// TestChaosPanicPublishWindow: a panic-mode injection in the publish
// window (after the durable save) is the in-process stand-in for a
// crash. A fresh writer over the same store must recover to a loadable
// generation whose content is either the previous or the staged load —
// and after re-appending the unacknowledged batch, converge to the
// fault-free outcome.
func TestChaosPanicPublishWindow(t *testing.T) {
	masks := []int{0b010}
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st, err := snapshot.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			base, rows, vals := chaosBatches(99)
			w, err := writer.Open(context.Background(), writer.Config{Store: st, Name: "facts", Base: base, Masks: masks})
			if err != nil {
				t.Fatal(err)
			}
			prev := w.Acquire()
			defer prev.Release()

			inj := fault.New(fault.Schedule{Seed: seed, Points: []string{fault.PointWriterPublish}, Rate: 1, Mode: fault.Panic, MaxInjections: 1})
			ctx := fault.WithInjector(context.Background(), inj)
			if err := w.Append(ctx, rows[0], vals[0]); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("publish-window panic injection did not fire")
					}
				}()
				_, _ = w.Flush(ctx)
			}()

			// "Restart": a brand-new writer on the same store. It must open
			// cleanly on a checksummed generation.
			w2, err := writer.Open(context.Background(), writer.Config{Store: st, Name: "facts", Card: base.Card, Masks: masks})
			if err != nil {
				t.Fatalf("seed %d: reopen after crash: %v", seed, err)
			}
			h := w2.Acquire()
			defer h.Release()
			staged := prev.Set().Clone()
			if _, err := staged.AppendRows(rows[0], vals[0]); err != nil {
				t.Fatal(err)
			}
			recoveredStaged := h.Set().Identical(staged)
			if !recoveredStaged && !h.Set().Identical(prev.Set()) {
				t.Fatalf("seed %d: recovered state is neither previous nor staged generation", seed)
			}
			// The crashed load was never acknowledged; the client re-sends
			// it (idempotence is the client's ledger — here we only re-send
			// when the load didn't survive). Either way the sequence must
			// converge to the same final set.
			all := &cube.Input{Card: base.Card}
			all.Rows = append(all.Rows, base.Rows...)
			all.Vals = append(all.Vals, base.Vals...)
			for i := range rows {
				all.Rows = append(all.Rows, rows[i]...)
				all.Vals = append(all.Vals, vals[i]...)
			}
			want, err := cube.Materialize(all, masks)
			if err != nil {
				t.Fatal(err)
			}
			start := 0
			if recoveredStaged {
				start = 1
			}
			for i := start; i < len(rows); i++ {
				if err := w2.Append(context.Background(), rows[i], vals[i]); err != nil {
					t.Fatal(err)
				}
				if _, err := w2.Flush(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			h2 := w2.Acquire()
			defer h2.Release()
			if !h2.Set().Identical(want) {
				t.Fatalf("seed %d: post-crash sequence did not converge to fault-free outcome", seed)
			}
		})
	}
}

// TestChaosBudgetNotRetried: a budget refusal during the delta fold is
// the caller's error — surfaced once, never retried, batch preserved.
func TestChaosBudgetNotRetried(t *testing.T) {
	base, rows, vals := chaosBatches(99)
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := writer.Open(context.Background(), writer.Config{
		Store: st, Name: "facts", Base: base, Masks: []int{0b011},
		MaxRetries: 5, Backoff: time.Nanosecond, Sleep: func(time.Duration) { t.Fatal("budget refusal slept for a retry") },
	})
	if err != nil {
		t.Fatal(err)
	}
	gov := budget.NewGovernor(budget.Limits{MaxCells: 1})
	ctx := budget.WithGovernor(context.Background(), gov)
	if err := w.Append(context.Background(), rows[0], vals[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Flush(ctx); !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("flush = %v, want budget refusal", err)
	}
	if st := w.Status(); st.Retries != 0 || st.PendingRows != len(rows[0]) {
		t.Fatalf("status = %+v: budget refusal must not retry or drop rows", st)
	}
}
