// Package writer is the engine's production write path: batched fact
// appends folded into a materialized cube by delta maintenance, each
// completed load published as a crash-atomic snapshot generation that
// concurrent readers pin for the lifetime of a query — MVCC
// reader/writer isolation built on internal/snapshot's versioned store.
//
// The paper's own operational model (§3: static data, periodic bulk
// loads) made concurrent, with the two §6.5 techniques E8 proved as
// experiments running as the real load cycle:
//
//   - appends never restructure: a load folds its batch into the base
//     cuboid and every registered view incrementally ([RKR97] deltas —
//     never a rematerialization), staged on a private clone of the
//     published generation (extendible-array discipline: existing data
//     is copied, never recomputed);
//   - every load is crash-atomic: staged build → CRC32C-sectioned
//     encode → fsync → generation rename (internal/snapshot's
//     container); a torn or injected-fault load leaves the previous
//     generation authoritative and is retried with bounded backoff;
//   - readers never block: a read handle pins one immutable generation
//     (in memory by reference, on disk by a store pin that pruning
//     honors) with one short mutex hold — never across a load's build
//     or save.
//
// Fault hook points writer.append, writer.delta and writer.publish
// (plus the snapshot.* hooks inside the save) let the chaos suite kill
// a load at every stage and assert byte-identical recovery.
package writer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"statcube/internal/budget"
	"statcube/internal/cube"
	"statcube/internal/fault"
	"statcube/internal/obs"
	"statcube/internal/qlog"
	"statcube/internal/snapshot"
)

// Write-path metrics, one registration site each:
//
//	writer.loads          loads folded and published
//	writer.delta_cells    view entries touched by delta maintenance
//	writer.retries        load retries after a failed attempt
//	writer.aborted_loads  load attempts that failed (each either
//	                      retried or surfaced as a typed error)
//	writer.publish_ns     wall time per published load (staging → visible)
//	writer.pending_rows   rows buffered awaiting the next load
var (
	loadsCounter   = obs.Default().Counter("writer.loads")
	deltaCells     = obs.Default().Counter("writer.delta_cells")
	retriesCounter = obs.Default().Counter("writer.retries")
	abortedLoads   = obs.Default().Counter("writer.aborted_loads")
	publishHist    = obs.Default().Histogram("writer.publish_ns")
	pendingGauge   = obs.Default().Gauge("writer.pending_rows")
)

// Config sizes a Writer. Zero fields take the documented defaults.
type Config struct {
	// Store is the snapshot store generations are published to. Nil
	// means in-memory generations only — still MVCC, no durability.
	Store *snapshot.Store
	// Name is the snapshot name within the store (required with Store;
	// see snapshot name rules).
	Name string
	// Base seeds an empty store (or a store-less writer) with an initial
	// fact table; ignored when the store already holds a loadable
	// generation. Nil means start empty with Card's dimensions.
	Base *cube.Input
	// Card is the per-dimension cardinality, required when Base is nil.
	// When both are set they must agree.
	Card []int
	// Masks lists the view masks to materialize and delta-maintain
	// beyond the always-present base cuboid.
	Masks []int
	// MaxPending caps buffered rows; Append refuses beyond it (default
	// 1<<20).
	MaxPending int
	// FlushRows, when positive, auto-publishes a load as soon as the
	// buffer reaches this many rows; 0 means loads happen only on Flush.
	FlushRows int
	// MaxRetries is how many times a failed load attempt is retried
	// before the error surfaces (default 3; negative means none).
	MaxRetries int
	// Backoff is the first retry's delay, doubling per attempt (default
	// 1ms). Bounded by construction: MaxRetries caps the doubling.
	Backoff time.Duration
	// Sleep is the backoff clock (default time.Sleep; tests inject).
	Sleep func(time.Duration)
	// OnPublish, when non-nil, runs after each generation becomes
	// reader-visible — the serving layer hooks its result-cache
	// invalidation here (live, instead of polling the store).
	OnPublish func(gen uint64)
}

// generation is one published, immutable cube state.
type generation struct {
	gen uint64
	set *cube.MaterializedSet
}

// Writer is the engine's single logical writer: Append buffers batches,
// Flush folds them into the next generation, Acquire hands out pinned
// read handles. All methods are safe for concurrent use; loads
// themselves are serialized (there is one write path), while Acquire
// never waits on a load.
type Writer struct {
	store      *snapshot.Store
	name       string
	card       []int
	masks      []int
	maxPending int
	flushRows  int
	maxRetries int
	backoff    time.Duration
	sleep      func(time.Duration)
	onPublish  func(uint64)

	// cur is the published generation; pinMu serializes the
	// publish swap against handle acquisition so a reader's store pin
	// can never race the writer's pin hand-over.
	cur   atomic.Pointer[generation]
	pinMu sync.Mutex

	loadMu sync.Mutex // serializes loads
	bufMu  sync.Mutex // guards the append buffer
	rows   [][]int
	vals   []float64

	loads   atomic.Int64
	retries atomic.Int64
	aborted atomic.Int64
	cells   atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

// Open builds the writer's initial generation: the newest loadable one
// from the store (recovering past corrupt or torn generations — the
// crash-recovery half of the publish protocol), else a fresh
// materialization of Base (or an empty cube over Card) published as the
// first generation.
func Open(ctx context.Context, cfg Config) (*Writer, error) {
	if cfg.Store != nil && cfg.Name == "" {
		return nil, fmt.Errorf("writer: Config.Name is required with a store")
	}
	card := cfg.Card
	if card == nil && cfg.Base != nil {
		card = cfg.Base.Card
	}
	if len(card) == 0 {
		return nil, fmt.Errorf("writer: Config.Card (or Base) is required")
	}
	if cfg.Base != nil && len(cfg.Base.Card) != len(card) {
		return nil, fmt.Errorf("writer: Base has %d dims, Card %d", len(cfg.Base.Card), len(card))
	}
	w := &Writer{
		store:      cfg.Store,
		name:       cfg.Name,
		card:       append([]int(nil), card...),
		masks:      append([]int(nil), cfg.Masks...),
		maxPending: cfg.MaxPending,
		flushRows:  cfg.FlushRows,
		maxRetries: cfg.MaxRetries,
		backoff:    cfg.Backoff,
		sleep:      cfg.Sleep,
		onPublish:  cfg.OnPublish,
	}
	if w.maxPending <= 0 {
		w.maxPending = 1 << 20
	}
	if w.maxRetries == 0 {
		w.maxRetries = 3
	} else if w.maxRetries < 0 {
		w.maxRetries = 0
	}
	if w.backoff <= 0 {
		w.backoff = time.Millisecond
	}
	if w.sleep == nil {
		w.sleep = time.Sleep
	}

	if w.store != nil {
		set, gen, err := cube.LoadMaterialized(ctx, w.store, w.name)
		if err == nil {
			if got := set.Card(); len(got) != len(w.card) {
				return nil, fmt.Errorf("writer: store generation %d has %d dims, config %d", gen, len(got), len(w.card))
			}
			w.cur.Store(&generation{gen: gen, set: set})
			w.store.Pin(w.name, gen)
			return w, nil
		}
		if !errors.Is(err, snapshot.ErrNotFound) {
			return nil, err
		}
	}
	base := cfg.Base
	if base == nil {
		base = &cube.Input{Card: w.card}
	}
	set, err := cube.MaterializeCtx(ctx, base, w.masks)
	if err != nil {
		return nil, err
	}
	gen := uint64(1)
	if w.store != nil {
		if gen, err = cube.SaveMaterialized(ctx, w.store, w.name, set); err != nil {
			return nil, err
		}
		w.store.Pin(w.name, gen)
	}
	w.cur.Store(&generation{gen: gen, set: set})
	return w, nil
}

// Close flushes any buffered rows and drops the writer's own pin on the
// current generation. Outstanding read handles keep their pins.
func (w *Writer) Close(ctx context.Context) error {
	_, err := w.Flush(ctx)
	w.pinMu.Lock()
	defer w.pinMu.Unlock()
	if w.store != nil {
		if g := w.cur.Load(); g != nil {
			w.store.Unpin(w.name, g.gen)
		}
	}
	return err
}

// Generation returns the published generation number.
func (w *Writer) Generation() uint64 { return w.cur.Load().gen }

// Acquire pins the published generation and returns a read handle on
// it. The pin hand-shake holds a mutex for two map operations and a
// pointer load — never across a load's staging, fold or save — so
// readers are never blocked by the write path. Release the handle when
// the query is done.
func (w *Writer) Acquire() *cube.ReadHandle {
	w.pinMu.Lock()
	g := w.cur.Load()
	if w.store != nil {
		w.store.Pin(w.name, g.gen)
	}
	w.pinMu.Unlock()
	release := func() {}
	if w.store != nil {
		gen := g.gen
		release = func() { w.store.Unpin(w.name, gen) }
	}
	return cube.NewReadHandle(g.set, g.gen, release)
}

// Append validates and buffers a batch of coded fact rows. The rows are
// copied — the caller's slices stay the caller's. When the buffer
// reaches FlushRows the load runs inline (the appender pays for the
// publish, a natural backpressure); otherwise rows wait for Flush.
func (w *Writer) Append(ctx context.Context, rows [][]int, vals []float64) error {
	in := &cube.Input{Card: w.card, Rows: rows, Vals: vals}
	if err := in.Validate(); err != nil {
		return err
	}
	w.bufMu.Lock()
	if len(w.rows)+len(rows) > w.maxPending {
		n := len(w.rows)
		w.bufMu.Unlock()
		return fmt.Errorf("writer: append buffer full (%d pending + %d new > %d): flush or raise MaxPending", n, len(rows), w.maxPending)
	}
	for _, row := range rows {
		w.rows = append(w.rows, append([]int(nil), row...))
	}
	w.vals = append(w.vals, vals...)
	pending := len(w.rows)
	w.bufMu.Unlock()
	if obs.On() {
		pendingGauge.Set(float64(pending))
	}
	if w.flushRows > 0 && pending >= w.flushRows {
		_, err := w.Flush(ctx)
		return err
	}
	return nil
}

// Pending returns the buffered row count.
func (w *Writer) Pending() int {
	w.bufMu.Lock()
	defer w.bufMu.Unlock()
	return len(w.rows)
}

// Flush folds every buffered row into the cube as one load and
// publishes the result as the next generation, retrying failed attempts
// with bounded exponential backoff. On success it returns the published
// generation (the current one when the buffer was empty). On final
// failure the batch returns to the buffer — no appended row is ever
// silently dropped — and the typed error surfaces. Budget refusals and
// cancellations are the caller's errors and are not retried.
func (w *Writer) Flush(ctx context.Context) (uint64, error) {
	w.loadMu.Lock()
	defer w.loadMu.Unlock()

	w.bufMu.Lock()
	rows, vals := w.rows, w.vals
	w.rows, w.vals = nil, nil
	w.bufMu.Unlock()
	if len(rows) == 0 {
		return w.Generation(), nil
	}
	if obs.On() {
		pendingGauge.Set(0)
	}

	var gen uint64
	var err error
	for attempt := 0; ; attempt++ {
		gen, err = w.load(ctx, rows, vals)
		if err == nil {
			w.setLastErr(nil)
			return gen, nil
		}
		w.aborted.Add(1)
		if obs.On() {
			abortedLoads.Inc()
		}
		w.setLastErr(err)
		if attempt >= w.maxRetries || !retryable(err) {
			break
		}
		w.retries.Add(1)
		if obs.On() {
			retriesCounter.Inc()
		}
		w.sleep(w.backoff << uint(attempt))
	}
	// Return the batch to the front of the buffer: the previous
	// generation stays authoritative and a later Flush retries the load.
	w.bufMu.Lock()
	w.rows = append(rows, w.rows...)
	w.vals = append(vals, w.vals...)
	pending := len(w.rows)
	w.bufMu.Unlock()
	if obs.On() {
		pendingGauge.Set(float64(pending))
	}
	return 0, err
}

// retryable separates environmental failures (injected faults, torn
// writes, IO errors) — worth a backoff and another attempt — from the
// caller's own budget refusal or cancellation, which a retry can only
// repeat.
func retryable(err error) bool {
	return !errors.Is(err, budget.ErrBudgetExceeded) && !budget.IsCanceled(err)
}

// load is one staged load attempt: clone the published set, fold the
// batch, save durably, publish. Every failure path discards the staging
// clone whole — the published generation is immutable and untouched.
func (w *Writer) load(ctx context.Context, rows [][]int, vals []float64) (uint64, error) {
	//lint:ignore nodeterm feeds the writer.publish_ns histogram and the load flight's wall time; benchdiff diffs neither
	start := time.Now()
	inj := fault.From(ctx)
	var touched int64
	gen, err := func() (uint64, error) {
		if err := inj.Hit(fault.PointWriterAppend); err != nil {
			return 0, err
		}
		cur := w.cur.Load()
		staging := cur.set.Clone()
		var err error
		touched, err = staging.AppendRowsCtx(ctx, rows, vals)
		if err != nil {
			return 0, err
		}
		gen := cur.gen + 1
		if w.store != nil {
			// The crash-atomic half: CRC32C-sectioned encode to a temp
			// file, fsync, generation rename, directory fsync. The
			// snapshot.write/section/rename hooks fire inside; pruning
			// honors reader pins.
			if gen, err = cube.SaveMaterialized(ctx, w.store, w.name, staging); err != nil {
				return 0, err
			}
		}
		// The publish window: the new generation is durable but not yet
		// reader-visible. A fault or crash here leaves readers on the
		// previous generation; the retried load re-stages from it and
		// converges to a byte-identical state (the orphaned on-disk
		// generation is itself complete and checksummed, so recovery
		// from it is equally correct).
		if err := inj.Hit(fault.PointWriterPublish); err != nil {
			return 0, err
		}
		w.pinMu.Lock()
		w.cur.Store(&generation{gen: gen, set: staging})
		if w.store != nil {
			w.store.Pin(w.name, gen)
			w.store.Unpin(w.name, cur.gen)
		}
		w.pinMu.Unlock()
		return gen, nil
	}()
	//lint:ignore nodeterm feeds the writer.publish_ns histogram and the load flight's wall time; benchdiff diffs neither
	wallNs := time.Since(start).Nanoseconds()
	if err == nil {
		w.loads.Add(1)
		w.cells.Add(touched)
		if obs.On() {
			loadsCounter.Inc()
			deltaCells.Add(touched)
			publishHist.Observe(float64(wallNs))
		}
	}
	w.recordFlight(ctx, len(rows), touched, wallNs, err)
	if err == nil && w.onPublish != nil {
		w.onPublish(gen)
	}
	return gen, err
}

// recordFlight logs one load (or failed attempt) to the flight
// recorder, mirroring the cube builders' build flights.
func (w *Writer) recordFlight(ctx context.Context, rows int, touched int64, wallNs int64, err error) {
	if !qlog.On() {
		return
	}
	rec := &qlog.Record{
		Kind:        "writer.load",
		Node:        "*writer*",
		Fingerprint: fmt.Sprintf("load[dims=%d rows=%d views=%d]", len(w.card), rows, len(w.masks)+1),
		WallNs:      wallNs,
		Cells:       touched,
		Workers:     1,
		Outcome:     qlog.Classify(err, false),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	qlog.Log(ctx, rec)
}

// setLastErr records the most recent load failure for Status (nil
// clears it).
func (w *Writer) setLastErr(err error) {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	if err == nil {
		w.lastErr = ""
	} else {
		w.lastErr = err.Error()
	}
}

// Status is a point-in-time summary of the write path, served by the
// daemon's /healthz.
type Status struct {
	Generation   uint64 `json:"generation"`
	Loads        int64  `json:"loads"`
	Retries      int64  `json:"retries"`
	AbortedLoads int64  `json:"aborted_loads"`
	DeltaCells   int64  `json:"delta_cells"`
	PendingRows  int    `json:"pending_rows"`
	LastError    string `json:"last_error,omitempty"`
}

// Status returns the writer's current counters.
func (w *Writer) Status() Status {
	w.errMu.Lock()
	lastErr := w.lastErr
	w.errMu.Unlock()
	return Status{
		Generation:   w.Generation(),
		Loads:        w.loads.Load(),
		Retries:      w.retries.Load(),
		AbortedLoads: w.aborted.Load(),
		DeltaCells:   w.cells.Load(),
		PendingRows:  w.Pending(),
		LastError:    lastErr,
	}
}
