package writer_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"statcube/internal/cube"
	"statcube/internal/fault"
	"statcube/internal/snapshot"
	"statcube/internal/writer"
)

// testInput builds a small deterministic fact table.
func testInput(t *testing.T, n int, seed int64) *cube.Input {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := &cube.Input{Card: []int{4, 3, 2}}
	for i := 0; i < n; i++ {
		in.Rows = append(in.Rows, []int{rng.Intn(4), rng.Intn(3), rng.Intn(2)})
		in.Vals = append(in.Vals, float64(rng.Intn(1000)))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

// batch cuts n rows from the same deterministic stream.
func batch(rng *rand.Rand, n int) ([][]int, []float64) {
	rows := make([][]int, n)
	vals := make([]float64, n)
	for i := range rows {
		rows[i] = []int{rng.Intn(4), rng.Intn(3), rng.Intn(2)}
		vals[i] = float64(rng.Intn(1000))
	}
	return rows, vals
}

// openTestWriter opens a writer over a fresh store in a temp dir.
func openTestWriter(t *testing.T, cfg writer.Config) (*writer.Writer, *snapshot.Store) {
	t.Helper()
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.Name == "" {
		cfg.Name = "facts"
	}
	w, err := writer.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, st
}

// TestOpenSeedsEmptyStore: an empty store materializes Base, publishes
// it as generation 1, and a reopened writer recovers it.
func TestOpenSeedsEmptyStore(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 500, 1)
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := writer.Open(ctx, writer.Config{Store: st, Name: "facts", Base: in, Masks: []int{0b011, 0b100}})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Generation(); got != 1 {
		t.Fatalf("generation = %d, want 1", got)
	}
	want, err := cube.Materialize(in, []int{0b011, 0b100})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Acquire()
	if !h.Set().Identical(want) {
		t.Fatal("opened set differs from direct materialization")
	}
	h.Release()
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Reopen: the stored generation is authoritative; Base is ignored.
	w2, err := writer.Open(ctx, writer.Config{Store: st, Name: "facts", Card: in.Card})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Generation(); got != 1 {
		t.Fatalf("reopened generation = %d, want 1", got)
	}
	h2 := w2.Acquire()
	defer h2.Release()
	if !h2.Set().Identical(want) {
		t.Fatal("reopened set differs from saved one")
	}
}

// TestAppendFlushMatchesRematerialization: deltas folded by the write
// path produce exactly the set a from-scratch materialization of
// base+appends produces — [RKR97]'s equivalence, bit for bit.
func TestAppendFlushMatchesRematerialization(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 500, 2)
	masks := []int{0b001, 0b110}
	w, _ := openTestWriter(t, writer.Config{Base: in, Masks: masks})

	all := &cube.Input{Card: in.Card}
	all.Rows = append(all.Rows, in.Rows...)
	all.Vals = append(all.Vals, in.Vals...)
	rng := rand.New(rand.NewSource(3))
	for load := 0; load < 4; load++ {
		rows, vals := batch(rng, 100)
		if err := w.Append(ctx, rows, vals); err != nil {
			t.Fatal(err)
		}
		gen, err := w.Flush(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(load + 2); gen != want {
			t.Fatalf("load %d published generation %d, want %d", load, gen, want)
		}
		all.Rows = append(all.Rows, rows...)
		all.Vals = append(all.Vals, vals...)
	}
	want, err := cube.Materialize(all, masks)
	if err != nil {
		t.Fatal(err)
	}
	h := w.Acquire()
	defer h.Release()
	if !h.Set().Identical(want) {
		t.Fatal("delta-maintained set differs from full rematerialization")
	}
	st := w.Status()
	if st.Loads != 4 || st.AbortedLoads != 0 || st.Retries != 0 {
		t.Fatalf("status = %+v, want 4 clean loads", st)
	}
	if st.DeltaCells == 0 {
		t.Fatal("status reports zero delta cells after 4 loads")
	}
}

// TestAutoFlush: reaching FlushRows publishes without an explicit Flush.
func TestAutoFlush(t *testing.T) {
	ctx := context.Background()
	w, _ := openTestWriter(t, writer.Config{Card: []int{4, 3, 2}, FlushRows: 50})
	rng := rand.New(rand.NewSource(4))
	rows, vals := batch(rng, 49)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	if got := w.Generation(); got != 1 {
		t.Fatalf("generation = %d before threshold, want 1", got)
	}
	rows, vals = batch(rng, 1)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	if got := w.Generation(); got != 2 {
		t.Fatalf("generation = %d after threshold, want 2", got)
	}
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending = %d after auto-flush, want 0", got)
	}
}

// TestAppendValidation: bad rows are refused before buffering, and the
// buffer cap surfaces as a typed refusal, not a drop.
func TestAppendValidation(t *testing.T) {
	ctx := context.Background()
	w, _ := openTestWriter(t, writer.Config{Card: []int{4, 3, 2}, MaxPending: 10})
	if err := w.Append(ctx, [][]int{{9, 0, 0}}, []float64{1}); err == nil {
		t.Fatal("out-of-range code accepted")
	}
	if err := w.Append(ctx, [][]int{{1, 0}}, []float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	rng := rand.New(rand.NewSource(5))
	rows, vals := batch(rng, 10)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ctx, [][]int{{0, 0, 0}}, []float64{1}); err == nil {
		t.Fatal("append beyond MaxPending accepted")
	}
	if got := w.Pending(); got != 10 {
		t.Fatalf("pending = %d after refused append, want 10", got)
	}
}

// TestMVCCHandleIsolation: a handle acquired before a load keeps
// answering from its pinned generation; a handle acquired after sees
// the new one. The old generation's snapshot file survives pruning
// until the handle releases.
func TestMVCCHandleIsolation(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 200, 6)
	base := 0b111
	w, st := openTestWriter(t, writer.Config{Base: in, Masks: []int{0b011}})

	old := w.Acquire()
	defer old.Release()
	oldView, _, err := old.Answer(base)
	if err != nil {
		t.Fatal(err)
	}
	oldSum := 0.0
	for _, v := range oldView {
		oldSum += v
	}

	rng := rand.New(rand.NewSource(7))
	// Publish enough generations that default pruning (Keep=2) would
	// sweep generation 1 were it not pinned by the old handle.
	for load := 0; load < 4; load++ {
		rows, vals := batch(rng, 50)
		if err := w.Append(ctx, rows, vals); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	view, _, err := old.Answer(base)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range view {
		sum += v
	}
	if sum != oldSum {
		t.Fatalf("pinned handle's base sum changed across publishes: %v -> %v", oldSum, sum)
	}
	if old.Generation() != 1 {
		t.Fatalf("old handle generation = %d, want 1", old.Generation())
	}

	fresh := w.Acquire()
	defer fresh.Release()
	if fresh.Generation() != 5 {
		t.Fatalf("fresh handle generation = %d, want 5", fresh.Generation())
	}

	// Pinned generation 1 must still be on disk; after release and one
	// more publish it is swept.
	gens, err := st.Generations("facts")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 || gens[0] != 1 {
		t.Fatalf("generations = %v, want pinned generation 1 retained", gens)
	}
	old.Release()
	old.Release() // idempotent
	rows, vals := batch(rng, 10)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	gens, err = st.Generations("facts")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gens {
		if g == 1 {
			t.Fatalf("generations = %v: released generation 1 survived pruning", gens)
		}
	}
}

// TestFlushFailureKeepsBatch: when every attempt fails, the previous
// generation stays authoritative, the batch returns to the buffer, and
// a later fault-free Flush publishes it.
func TestFlushFailureKeepsBatch(t *testing.T) {
	in := testInput(t, 100, 8)
	w, _ := openTestWriter(t, writer.Config{Base: in, MaxRetries: 2, Backoff: time.Nanosecond})

	inj := fault.New(fault.Schedule{Seed: 9, Points: []string{fault.PointWriterPublish}, Rate: 1, Mode: fault.Error})
	ctx := fault.WithInjector(context.Background(), inj)
	rng := rand.New(rand.NewSource(9))
	rows, vals := batch(rng, 30)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	_, err := w.Flush(ctx)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := w.Generation(); got != 1 {
		t.Fatalf("generation = %d after failed load, want 1", got)
	}
	if got := w.Pending(); got != 30 {
		t.Fatalf("pending = %d after failed load, want the batch back", got)
	}
	st := w.Status()
	if st.AbortedLoads != 3 || st.Retries != 2 {
		t.Fatalf("status = %+v, want 3 aborted attempts, 2 retries", st)
	}
	if st.LastError == "" {
		t.Fatal("status.LastError empty after failed load")
	}

	// Each publish-window fault left a durable-but-unpublished orphan
	// generation (2, 3, 4 — that's the documented crash shape); the
	// recovery flush publishes the next store generation after them.
	gen, err := w.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 5 || w.Pending() != 0 {
		t.Fatalf("recovery flush: gen=%d pending=%d, want 5 and 0", gen, w.Pending())
	}
	if w.Status().LastError != "" {
		t.Fatal("status.LastError not cleared by successful load")
	}
}

// TestFlushDoesNotRetryCancellation: the caller's canceled context is
// not an environmental failure — one attempt, no backoff loop.
func TestFlushDoesNotRetryCancellation(t *testing.T) {
	w, _ := openTestWriter(t, writer.Config{Card: []int{4, 3, 2}, MaxRetries: 5, Backoff: time.Nanosecond})
	rng := rand.New(rand.NewSource(10))
	rows, vals := batch(rng, 10)
	if err := w.Append(context.Background(), rows, vals); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Flush(ctx); err == nil {
		t.Fatal("flush on canceled context succeeded")
	}
	if st := w.Status(); st.Retries != 0 {
		t.Fatalf("retries = %d for a canceled flush, want 0", st.Retries)
	}
}

// TestEmptyFlushIsNoop: flushing an empty buffer publishes nothing.
func TestEmptyFlushIsNoop(t *testing.T) {
	w, st := openTestWriter(t, writer.Config{Card: []int{4, 3, 2}})
	gen, err := w.Flush(context.Background())
	if err != nil || gen != 1 {
		t.Fatalf("empty flush = (%d, %v), want (1, nil)", gen, err)
	}
	gens, err := st.Generations("facts")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("generations = %v after empty flush, want just the seed", gens)
	}
}

// TestOnPublishCallback: every published generation fires the hook in
// order — the serving layer's live cache-invalidation contract.
func TestOnPublishCallback(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var got []uint64
	w, _ := openTestWriter(t, writer.Config{
		Card:      []int{4, 3, 2},
		OnPublish: func(gen uint64) { mu.Lock(); got = append(got, gen); mu.Unlock() },
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		rows, vals := batch(rng, 20)
		if err := w.Append(ctx, rows, vals); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("OnPublish generations = %v, want [2 3 4]", got)
	}
}

// TestMemoryOnlyWriter: a store-less writer is still a correct MVCC
// writer — generations count up in memory, handles pin by reference.
func TestMemoryOnlyWriter(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 100, 12)
	w, err := writer.Open(ctx, writer.Config{Base: in, Masks: []int{0b001}})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Acquire()
	defer h.Release()
	rng := rand.New(rand.NewSource(12))
	rows, vals := batch(rng, 40)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	gen, err := w.Flush(ctx)
	if err != nil || gen != 2 {
		t.Fatalf("flush = (%d, %v), want (2, nil)", gen, err)
	}
	if h.Generation() != 1 {
		t.Fatalf("old handle generation = %d, want 1", h.Generation())
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersDuringSustainedAppends: readers acquire, answer
// and release continuously while the writer publishes load after load.
// Every reader must observe an internally consistent generation — the
// base cuboid's total equals one of the totals the load sequence
// actually published — and no reader ever errors. Run under -race this
// is also the write path's memory-model proof.
func TestConcurrentReadersDuringSustainedAppends(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 200, 13)
	w, _ := openTestWriter(t, writer.Config{Base: in, Masks: []int{0b011, 0b101}})

	const loads = 20
	// Precompute the running totals each published generation must show.
	validTotals := map[float64]uint64{}
	total := 0.0
	for _, v := range in.Vals {
		total += v
	}
	validTotals[total] = 1
	rng := rand.New(rand.NewSource(13))
	batches := make([][2]interface{}, loads)
	for i := range batches {
		rows, vals := batch(rng, 25)
		batches[i] = [2]interface{}{rows, vals}
		for _, v := range vals {
			total += v
		}
		validTotals[total] = uint64(i + 2)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := w.Acquire()
				view, _, err := h.Answer(0b111)
				if err != nil {
					errs <- err
					h.Release()
					return
				}
				sum := 0.0
				for _, v := range view {
					sum += v
				}
				if wantGen, ok := validTotals[sum]; !ok {
					errs <- fmt.Errorf("reader saw base total %v matching no published load", sum)
					h.Release()
					return
				} else if wantGen != h.Generation() {
					errs <- fmt.Errorf("reader saw total of generation %d under handle generation %d", wantGen, h.Generation())
					h.Release()
					return
				}
				h.Release()
			}
		}()
	}
	for _, b := range batches {
		if err := w.Append(ctx, b[0].([][]int), b[1].([]float64)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := w.Generation(); got != loads+1 {
		t.Fatalf("generation = %d after %d loads, want %d", got, loads, loads+1)
	}
}

// TestSavedGenerationBytesMatchPublished: what a load publishes in
// memory and what it saved to disk decode to identical sets — the
// durable generation IS the published one.
func TestSavedGenerationBytesMatchPublished(t *testing.T) {
	ctx := context.Background()
	in := testInput(t, 150, 14)
	w, st := openTestWriter(t, writer.Config{Base: in, Masks: []int{0b110}})
	rng := rand.New(rand.NewSource(14))
	rows, vals := batch(rng, 60)
	if err := w.Append(ctx, rows, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	loaded, gen, err := cube.LoadMaterialized(ctx, st, "facts")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("newest stored generation = %d, want 2", gen)
	}
	h := w.Acquire()
	defer h.Release()
	if !h.Set().Identical(loaded) {
		t.Fatal("stored generation decodes differently from the published set")
	}
	// And the encodings themselves are byte-identical: the encoder sorts,
	// so equal sets mean equal files.
	var a, b bytes.Buffer
	if err := cube.EncodeMaterialized(ctx, &a, h.Set()); err != nil {
		t.Fatal(err)
	}
	if err := cube.EncodeMaterialized(ctx, &b, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("published and stored sets encode to different bytes")
	}
}

// TestOpenValidation: the config contract's refusals.
func TestOpenValidation(t *testing.T) {
	ctx := context.Background()
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Open(ctx, writer.Config{Store: st}); err == nil {
		t.Fatal("store without name accepted")
	}
	if _, err := writer.Open(ctx, writer.Config{}); err == nil {
		t.Fatal("no card, no base accepted")
	}
	if _, err := writer.Open(ctx, writer.Config{Base: &cube.Input{Card: []int{2, 2}}, Card: []int{2}}); err == nil {
		t.Fatal("card/base dimension mismatch accepted")
	}
}
