package table

import (
	"errors"
	"strings"
	"testing"

	"statcube/internal/core"
	"statcube/internal/schema"
)

const wideCSV = `sex,year,engineer,secretary,teacher
male,1991,438800,688400,336683
male,1992,487900,711900,.
female,1991,137800,829600,491194
`

func wideMeasure() core.Measure {
	return core.Measure{Name: "employment", Func: core.Sum, Type: core.Stock}
}

func TestParseWide(t *testing.T) {
	obj, err := ParseWide(strings.NewReader(wideCSV), 2, "profession", wideMeasure())
	if err != nil {
		t.Fatal(err)
	}
	if obj.Schema().NumDims() != 3 {
		t.Fatalf("dims = %d", obj.Schema().NumDims())
	}
	if obj.Cells() != 8 { // 9 cells minus one "." absent
		t.Errorf("cells = %d", obj.Cells())
	}
	v, ok, err := obj.CellValue(map[string]core.Value{
		"sex": "male", "year": "1991", "profession": "engineer",
	}, "employment")
	if err != nil || !ok || v != 438800 {
		t.Errorf("cell = %v, %v, %v", v, ok, err)
	}
	// The absent cell stayed absent.
	_, ok, _ = obj.CellValue(map[string]core.Value{
		"sex": "male", "year": "1992", "profession": "teacher",
	}, "employment")
	if ok {
		t.Error("'.' cell should be absent")
	}
	// Round trip: render the parsed object back as a table.
	out, err := Render(obj, schema.Layout2D{Rows: []string{"sex", "year"}, Cols: []string{"profession"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "438800") || !strings.Contains(out, "491194") {
		t.Errorf("round trip lost data:\n%s", out)
	}
}

func TestParseWideThousandsSeparators(t *testing.T) {
	in := "region,q1\nwest,\"1,463,883\"\n"
	obj, err := ParseWide(strings.NewReader(in), 1, "quarter", wideMeasure())
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := obj.CellValue(map[string]core.Value{"region": "west", "quarter": "q1"}, "employment")
	if !ok || v != 1463883 {
		t.Errorf("cell = %v, %v", v, ok)
	}
}

func TestParseWideErrors(t *testing.T) {
	m := wideMeasure()
	cases := []struct {
		name, in string
		nRowDims int
	}{
		{"zero row dims", wideCSV, 0},
		{"header too short", "a\n1\n", 1},
		{"empty header name", ",x\nv,1\n", 1},
		{"empty column value", "a,\nv,1\n", 1},
		{"ragged row", "a,x\nv\n", 1},
		{"no data rows", "a,x\n", 1},
		{"bad number", "a,x\nv,notanumber\n", 1},
	}
	for _, c := range cases {
		if _, err := ParseWide(strings.NewReader(c.in), c.nRowDims, "col", m); !errors.Is(err, ErrWideFormat) {
			t.Errorf("%s: err = %v, want ErrWideFormat", c.name, err)
		}
	}
}

func TestParseWideDuplicateColumnHeader(t *testing.T) {
	in := "region,q1,q1\nwest,1,2\n"
	if _, err := ParseWide(strings.NewReader(in), 1, "quarter", wideMeasure()); !errors.Is(err, ErrWideFormat) {
		t.Errorf("duplicate header err = %v, want ErrWideFormat", err)
	}
}
