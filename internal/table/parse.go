package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"statcube/internal/core"
	"statcube/internal/hierarchy"
	"statcube/internal/schema"
)

// This file reads legacy 2-D statistical tables back into statistical
// objects — the direction Figure 7 motivates: "in case that one needs to
// interface to legacy systems that store and access information according
// to the 2-D layout". The supported interchange format is wide CSV:
//
//	sex,year,engineer,secretary,teacher      <- row dim names, then column values
//	male,1991,438800,688400,336683
//	male,1992,487900,711900,359287
//
// The first nRowDims header cells name the row dimensions; the remaining
// header cells are the column dimension's category values. Empty cells and
// "." mark absent data.

// ErrWideFormat is returned for malformed wide-format input.
var ErrWideFormat = errors.New("table: malformed wide-format table")

// ParseWide reads a wide-format 2-D table into a statistical object with
// nRowDims row dimensions, a column dimension named colDim, and the given
// measure. All classifications are flat (legacy layout carries no
// hierarchy metadata; attach one afterwards with SAggregateVia if known).
func ParseWide(r io.Reader, nRowDims int, colDim string, measure core.Measure) (*core.StatObject, error) {
	if nRowDims < 1 {
		return nil, fmt.Errorf("%w: need at least one row dimension", ErrWideFormat)
	}
	rd := csv.NewReader(r)
	rd.TrimLeadingSpace = true
	header, err := rd.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrWideFormat, err)
	}
	if len(header) < nRowDims+1 {
		return nil, fmt.Errorf("%w: header has %d cells, need %d row dims plus at least one column value",
			ErrWideFormat, len(header), nRowDims)
	}
	rowDimNames := make([]string, nRowDims)
	for i := range rowDimNames {
		rowDimNames[i] = strings.TrimSpace(header[i])
		if rowDimNames[i] == "" {
			return nil, fmt.Errorf("%w: empty row dimension name in header cell %d", ErrWideFormat, i+1)
		}
	}
	colValues := make([]core.Value, 0, len(header)-nRowDims)
	seenCol := map[core.Value]bool{}
	for _, h := range header[nRowDims:] {
		v := strings.TrimSpace(h)
		if v == "" {
			return nil, fmt.Errorf("%w: empty column value in header", ErrWideFormat)
		}
		if seenCol[v] {
			return nil, fmt.Errorf("%w: duplicate column value %q in header", ErrWideFormat, v)
		}
		seenCol[v] = true
		colValues = append(colValues, v)
	}
	// First pass: collect rows and discover row-dimension values in order.
	type record struct {
		rowVals []core.Value
		cells   []string
	}
	var records []record
	valueOrder := make([][]core.Value, nRowDims)
	seen := make([]map[core.Value]bool, nRowDims)
	for i := range seen {
		seen[i] = map[core.Value]bool{}
	}
	lineNo := 1
	for {
		rec, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		lineNo++
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrWideFormat, lineNo, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d cells, want %d", ErrWideFormat, lineNo, len(rec), len(header))
		}
		rv := make([]core.Value, nRowDims)
		for i := 0; i < nRowDims; i++ {
			rv[i] = strings.TrimSpace(rec[i])
			if !seen[i][rv[i]] {
				seen[i][rv[i]] = true
				valueOrder[i] = append(valueOrder[i], rv[i])
			}
		}
		records = append(records, record{rowVals: rv, cells: rec[nRowDims:]})
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrWideFormat)
	}
	var dims []schema.Dimension
	for i, name := range rowDimNames {
		dims = append(dims, schema.Dimension{
			Name:  name,
			Class: hierarchy.FlatClassification(name, valueOrder[i]...),
		})
	}
	dims = append(dims, schema.Dimension{
		Name:  colDim,
		Class: hierarchy.FlatClassification(colDim, colValues...),
	})
	sch, err := schema.New("imported table", dims...)
	if err != nil {
		return nil, err
	}
	obj, err := core.New(sch, []core.Measure{measure})
	if err != nil {
		return nil, err
	}
	for ri, rec := range records {
		for ci, cell := range rec.cells {
			s := strings.TrimSpace(cell)
			if s == "" || s == "." {
				continue
			}
			x, err := strconv.ParseFloat(strings.ReplaceAll(s, ",", ""), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: data row %d, column %q: bad number %q",
					ErrWideFormat, ri+1, colValues[ci], cell)
			}
			coords := map[string]core.Value{colDim: colValues[ci]}
			for i, name := range rowDimNames {
				coords[name] = rec.rowVals[i]
			}
			if err := obj.SetCell(coords, map[string]float64{measure.Name: x}); err != nil {
				return nil, err
			}
		}
	}
	return obj, nil
}
