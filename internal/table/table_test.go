package table

import (
	"errors"
	"strings"
	"testing"

	"statcube/internal/core"
	"statcube/internal/hierarchy"
	"statcube/internal/schema"
)

// figure1 builds a small version of the paper's "Employment in California"
// object: sex × year × profession with a professional-class hierarchy.
// Employment is a flow-ish count here so marginals over every dimension
// are allowed; the stock variant is tested separately.
func figure1(t *testing.T, mtype core.MeasureType) *core.StatObject {
	t.Helper()
	prof := hierarchy.NewBuilder("profession", "profession",
		"chemical engineer", "civil engineer", "junior secretary").
		Level("professional class", "engineer", "secretary").
		Parent("chemical engineer", "engineer").
		Parent("civil engineer", "engineer").
		Parent("junior secretary", "secretary").
		MustBuild()
	sch := schema.MustNew("employment",
		schema.Dimension{Name: "sex", Class: hierarchy.FlatClassification("sex", "male", "female")},
		schema.Dimension{Name: "year", Class: hierarchy.FlatClassification("year", "1991", "1992"), Temporal: true},
		schema.Dimension{Name: "profession", Class: prof},
	)
	o := core.MustNew(sch, []core.Measure{{Name: "employment", Func: core.Sum, Type: mtype}})
	cells := []struct {
		sex, year, prof string
		v               float64
	}{
		{"male", "1991", "chemical engineer", 100},
		{"male", "1991", "civil engineer", 200},
		{"male", "1992", "chemical engineer", 110},
		{"female", "1991", "junior secretary", 300},
		{"female", "1992", "junior secretary", 320},
	}
	for _, c := range cells {
		if err := o.SetCell(map[string]core.Value{"sex": c.sex, "year": c.year, "profession": c.prof},
			map[string]float64{"employment": c.v}); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func layoutSYxP() schema.Layout2D {
	return schema.Layout2D{Rows: []string{"sex", "year"}, Cols: []string{"profession"}}
}

func TestRenderBasic(t *testing.T) {
	o := figure1(t, core.Flow)
	out, err := Render(o, layoutSYxP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two-tier header: professional class above profession.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "engineer") || !strings.Contains(lines[0], "secretary") {
		t.Errorf("parent header missing:\n%s", out)
	}
	if !strings.Contains(lines[1], "chemical engineer") {
		t.Errorf("leaf header missing:\n%s", out)
	}
	// Stub labels and data present.
	if !strings.Contains(out, "male") || !strings.Contains(out, "1991") {
		t.Errorf("stub missing:\n%s", out)
	}
	if !strings.Contains(out, "200") || !strings.Contains(out, "320") {
		t.Errorf("cells missing:\n%s", out)
	}
	// Empty cells marked.
	if !strings.Contains(out, ".") {
		t.Errorf("empty marker missing:\n%s", out)
	}
	// Header + 4 row tuples = 2 + 4 lines.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestRenderMarginals(t *testing.T) {
	o := figure1(t, core.Flow)
	out, err := Render(o, layoutSYxP(), Options{Marginals: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total") {
		t.Fatalf("no totals:\n%s", out)
	}
	// Row male/1991: 100+200 = 300; grand total 1030.
	var maleRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "male") && strings.Contains(line, "1991") && !strings.Contains(line, "female") {
			maleRow = line
		}
	}
	if !strings.Contains(maleRow, "300") {
		t.Errorf("male 1991 total missing: %q", maleRow)
	}
	if !strings.Contains(out, "1030") {
		t.Errorf("grand total missing:\n%s", out)
	}
}

func TestRenderStockMarginalsNotSummarizable(t *testing.T) {
	// Employment as a Stock measure: the total column sums over the
	// profession columns (fine), but the total row sums over sex AND the
	// temporal year — not summarizable, so "n/s" must appear.
	o := figure1(t, core.Stock)
	out, err := Render(o, layoutSYxP(), Options{Marginals: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n/s") {
		t.Errorf("expected n/s markers for stock-over-time totals:\n%s", out)
	}
	// The per-row totals (over professions only) are still real numbers.
	if !strings.Contains(out, "300") {
		t.Errorf("per-row total missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	o := figure1(t, core.Flow)
	// Invalid layout.
	if _, err := Render(o, schema.Layout2D{Rows: []string{"sex"}}, Options{}); err == nil {
		t.Error("incomplete layout should fail")
	}
	// Unknown measure.
	if _, err := Render(o, layoutSYxP(), Options{Measure: "nope"}); !errors.Is(err, core.ErrUnknownMeasure) {
		t.Errorf("unknown measure err = %v", err)
	}
	// Ambiguous measure.
	sch := schema.MustNew("x",
		schema.Dimension{Name: "a", Class: hierarchy.FlatClassification("a", "1", "2")},
		schema.Dimension{Name: "b", Class: hierarchy.FlatClassification("b", "1")})
	multi := core.MustNew(sch, []core.Measure{
		{Name: "m1", Func: core.Sum, Type: core.Flow},
		{Name: "m2", Func: core.Sum, Type: core.Flow},
	})
	if _, err := Render(multi, schema.Layout2D{Rows: []string{"a"}, Cols: []string{"b"}}, Options{}); !errors.Is(err, ErrAmbiguousMeasure) {
		t.Errorf("ambiguous measure err = %v", err)
	}
}

func TestRenderAvgMarginalsRefused(t *testing.T) {
	sch := schema.MustNew("x",
		schema.Dimension{Name: "a", Class: hierarchy.FlatClassification("a", "1", "2")},
		schema.Dimension{Name: "b", Class: hierarchy.FlatClassification("b", "1")})
	o := core.MustNew(sch, []core.Measure{{Name: "price", Func: core.Avg, Type: core.ValuePerUnit}})
	_ = o.SetCell(map[string]core.Value{"a": "1", "b": "1"}, map[string]float64{"price": 10})
	out, err := Render(o, schema.Layout2D{Rows: []string{"a"}, Cols: []string{"b"}}, Options{Marginals: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n/s") {
		t.Errorf("avg marginals should be refused:\n%s", out)
	}
}

func TestRenderCustomEmptyMarker(t *testing.T) {
	o := figure1(t, core.Flow)
	out, err := Render(o, layoutSYxP(), Options{Empty: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("custom empty marker missing:\n%s", out)
	}
}

func TestRenderGroupSubtotals(t *testing.T) {
	o := figure1(t, core.Flow)
	out, err := Render(o, layoutSYxP(), Options{GroupSubtotals: true, Marginals: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Parent header line shows each class over its subtotal column too.
	if !strings.Contains(lines[0], "engineer") || !strings.Contains(lines[0], "secretary") {
		t.Errorf("parent header missing:\n%s", out)
	}
	// Figure 9: male/1991 engineer subtotal = 100 + 200 = 300.
	var maleRow string
	for _, line := range lines {
		if strings.Contains(line, "male") && strings.Contains(line, "1991") && !strings.Contains(line, "female") {
			maleRow = line
		}
	}
	if !strings.Contains(maleRow, "300") {
		t.Errorf("engineer subtotal missing: %q", maleRow)
	}
	// The leaf header line carries "total" labels for the subtotal columns.
	if !strings.Contains(lines[1], "total") {
		t.Errorf("subtotal header missing:\n%s", out)
	}
}

func TestRenderGroupSubtotalsLayoutErrors(t *testing.T) {
	o := figure1(t, core.Flow)
	// Two column dimensions: unsupported.
	bad := schema.Layout2D{Rows: []string{"sex"}, Cols: []string{"year", "profession"}}
	if _, err := Render(o, bad, Options{GroupSubtotals: true}); !errors.Is(err, ErrSubtotalLayout) {
		t.Errorf("two-col err = %v", err)
	}
	// Flat column dimension: unsupported.
	flat := schema.Layout2D{Rows: []string{"year", "profession"}, Cols: []string{"sex"}}
	if _, err := Render(o, flat, Options{GroupSubtotals: true}); !errors.Is(err, ErrSubtotalLayout) {
		t.Errorf("flat err = %v", err)
	}
}

func TestRenderGroupSubtotalsNonStrictRejected(t *testing.T) {
	phys := hierarchy.NewBuilder("physician", "physician", "dr-a", "dr-b").
		Level("specialty", "onc", "pulm").
		Parent("dr-a", "onc").
		Parent("dr-b", "onc").
		Parent("dr-b", "pulm").
		MustBuild()
	sch := schema.MustNew("hmo",
		schema.Dimension{Name: "year", Class: hierarchy.FlatClassification("year", "1996")},
		schema.Dimension{Name: "physician", Class: phys})
	o := core.MustNew(sch, []core.Measure{{Name: "cost", Func: core.Sum, Type: core.Flow}})
	layout := schema.Layout2D{Rows: []string{"year"}, Cols: []string{"physician"}}
	if _, err := Render(o, layout, Options{GroupSubtotals: true}); !errors.Is(err, ErrSubtotalLayout) {
		t.Errorf("non-strict err = %v", err)
	}
}

func TestRenderGroupSubtotalsStockNS(t *testing.T) {
	// Stock measure over a temporal row dim: column subtotals sum over the
	// profession dimension only, which IS allowed; verify numbers appear.
	o := figure1(t, core.Stock)
	out, err := Render(o, layoutSYxP(), Options{GroupSubtotals: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "300") {
		t.Errorf("stock subtotal over professions should be allowed:\n%s", out)
	}
}
