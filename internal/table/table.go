// Package table renders a statistical object as the traditional 2-D
// statistical table (Figures 1 and 9 of Shoshani's OLAP-vs-SDB survey):
// dimensions are assigned to rows and columns in a chosen order, category
// values nest across the stub and the header, classification parents are
// shown above their children, and "marginals" — the totals statisticians
// print on the margins — can be added per row, per column and overall.
//
// Marginals are only computed where the object's summarizability rules
// allow; a dimension that cannot be summed over (a stock measure along
// time, a non-strict hierarchy) yields "n/s" cells rather than silently
// wrong totals, making Section 3.3.2 visible in the output.
package table

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"statcube/internal/core"
	"statcube/internal/schema"
)

// Options configure rendering.
type Options struct {
	// Measure selects which measure to print; empty defaults to the
	// object's single measure.
	Measure string
	// Marginals adds a total column, a total row and the grand total.
	Marginals bool
	// GroupSubtotals adds a subtotal column after each classification
	// group of the column dimension — Figure 9's per-professional-class
	// "total" columns. Requires a single column dimension with a
	// classification hierarchy.
	GroupSubtotals bool
	// Empty is printed for absent cells (default ".").
	Empty string
}

// ErrSubtotalLayout is returned when GroupSubtotals is requested for a
// layout it does not support.
var ErrSubtotalLayout = errors.New("table: group subtotals need exactly one column dimension with a hierarchy")

// ErrAmbiguousMeasure is returned when Measure is empty and the object has
// several measures.
var ErrAmbiguousMeasure = errors.New("table: object has several measures; set Options.Measure")

// Render draws the object as an aligned text table under the layout.
func Render(o *core.StatObject, layout schema.Layout2D, opts Options) (string, error) {
	if err := o.Schema().ValidateLayout(layout); err != nil {
		return "", err
	}
	measure := opts.Measure
	if measure == "" {
		ms := o.Measures()
		if len(ms) != 1 {
			return "", ErrAmbiguousMeasure
		}
		measure = ms[0].Name
	}
	if _, err := o.Measure(measure); err != nil {
		return "", err
	}
	empty := opts.Empty
	if empty == "" {
		empty = "."
	}

	rowDims, err := dimsOf(o, layout.Rows)
	if err != nil {
		return "", err
	}
	colDims, err := dimsOf(o, layout.Cols)
	if err != nil {
		return "", err
	}
	rowTuples := crossProduct(rowDims)

	// Build the display columns: plain leaf tuples, or — with group
	// subtotals — the single column dimension's leaves grouped by parent
	// with a subtotal column per group (Figure 9).
	vcols, err := buildColumns(colDims, layout.Cols, opts.GroupSubtotals)
	if err != nil {
		return "", err
	}
	subtotalOK := !opts.GroupSubtotals || summable(o, measure, layout.Cols)

	// Precompute marginal feasibility: the total column sums over every
	// column dimension; the total row over every row dimension.
	colTotalOK := opts.Marginals && summable(o, measure, layout.Cols)
	rowTotalOK := opts.Marginals && summable(o, measure, layout.Rows)

	// Grid assembly: stub columns, then the display columns, then the
	// optional total column.
	nStub := len(rowDims)
	nCols := nStub + len(vcols)
	if opts.Marginals {
		nCols++
	}
	var grid [][]string

	// Header: one line per column dimension (parents-of-leaf line first if
	// the leaf classification has an upper level, Figure 1's two-tier
	// header).
	for ci, d := range colDims {
		if d.Class.NumLevels() > 1 {
			line := make([]string, nCols)
			for ti, vc := range vcols {
				if vc.subtotal {
					line[nStub+ti] = vc.parent
					continue
				}
				parents, err := d.Class.Parents(0, vc.tuple[ci])
				if err == nil && len(parents) > 0 {
					line[nStub+ti] = parents[0]
				}
			}
			grid = append(grid, line)
		}
		line := make([]string, nCols)
		for i, lbl := range layout.Rows {
			if ci == len(colDims)-1 {
				line[i] = lbl // stub headings on the last header line
			}
		}
		for ti, vc := range vcols {
			if vc.subtotal {
				if ci == len(colDims)-1 {
					line[nStub+ti] = "total"
				}
				continue
			}
			line[nStub+ti] = vc.tuple[ci]
		}
		if opts.Marginals && ci == len(colDims)-1 {
			line[nCols-1] = "total"
		}
		grid = append(grid, line)
	}

	format := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	cellValue := func(coords map[string]core.Value) (string, float64, bool) {
		v, ok, err := o.CellValue(coords, measure)
		if err != nil || !ok {
			return empty, 0, false
		}
		return format(v), v, true
	}

	colTotals := make([]float64, len(vcols))
	colAny := make([]bool, len(vcols))
	var grand float64
	var grandAny bool

	for _, rt := range rowTuples {
		line := make([]string, nCols)
		copy(line, rt)
		rowTotal := 0.0
		rowAny := false
		groupTotal := 0.0
		groupAny := false
		for ti, vc := range vcols {
			if vc.subtotal {
				switch {
				case !subtotalOK:
					line[nStub+ti] = "n/s"
				case groupAny:
					line[nStub+ti] = format(groupTotal)
					colTotals[ti] += groupTotal
					colAny[ti] = true
				default:
					line[nStub+ti] = empty
				}
				groupTotal, groupAny = 0, false
				continue
			}
			coords := map[string]core.Value{}
			for i, name := range layout.Rows {
				coords[name] = rt[i]
			}
			for i, name := range layout.Cols {
				coords[name] = vc.tuple[i]
			}
			s, v, ok := cellValue(coords)
			line[nStub+ti] = s
			if ok {
				rowTotal += v
				rowAny = true
				colTotals[ti] += v
				colAny[ti] = true
				grand += v
				grandAny = true
				groupTotal += v
				groupAny = true
			}
		}
		if opts.Marginals {
			switch {
			case !colTotalOK:
				line[nCols-1] = "n/s"
			case rowAny:
				line[nCols-1] = format(rowTotal)
			default:
				line[nCols-1] = empty
			}
		}
		grid = append(grid, line)
	}

	if opts.Marginals {
		line := make([]string, nCols)
		line[0] = "total"
		for ti, vc := range vcols {
			switch {
			case !rowTotalOK || (vc.subtotal && !subtotalOK):
				line[nStub+ti] = "n/s"
			case colAny[ti]:
				line[nStub+ti] = format(colTotals[ti])
			default:
				line[nStub+ti] = empty
			}
		}
		switch {
		case !rowTotalOK || !colTotalOK:
			line[nCols-1] = "n/s"
		case grandAny:
			line[nCols-1] = format(grand)
		default:
			line[nCols-1] = empty
		}
		grid = append(grid, line)
	}

	return align(grid), nil
}

// vcol is one display column: a concrete leaf tuple or a group subtotal.
type vcol struct {
	tuple    []core.Value // leaf tuple (nil for subtotals)
	subtotal bool
	parent   core.Value // the classification group a subtotal closes
}

// buildColumns lays out the display columns. Without subtotals, one column
// per cross-product tuple. With subtotals, the single hierarchical column
// dimension's leaves are grouped by their level-1 parent, each group
// followed by its subtotal column.
func buildColumns(colDims []schema.Dimension, colNames []string, subtotals bool) ([]vcol, error) {
	if !subtotals {
		var out []vcol
		for _, t := range crossProduct(colDims) {
			out = append(out, vcol{tuple: t})
		}
		return out, nil
	}
	if len(colDims) != 1 || colDims[0].Class.NumLevels() < 2 {
		return nil, ErrSubtotalLayout
	}
	cls := colDims[0].Class
	if !cls.IsStrictEdge(0) {
		return nil, fmt.Errorf("%w: non-strict classification %q", ErrSubtotalLayout, cls.Name())
	}
	var out []vcol
	for _, parent := range cls.Level(1).Values {
		children, err := cls.Children(1, parent)
		if err != nil {
			return nil, err
		}
		if len(children) == 0 {
			continue
		}
		for _, child := range children {
			out = append(out, vcol{tuple: []core.Value{child}})
		}
		out = append(out, vcol{subtotal: true, parent: parent})
	}
	return out, nil
}

// dimsOf resolves layout names to schema dimensions.
func dimsOf(o *core.StatObject, names []string) ([]schema.Dimension, error) {
	out := make([]schema.Dimension, len(names))
	for i, n := range names {
		d, err := o.Schema().Dimension(n)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// crossProduct enumerates the leaf-value tuples of the dimensions in
// nesting order (first dimension slowest).
func crossProduct(dims []schema.Dimension) [][]core.Value {
	tuples := [][]core.Value{{}}
	for _, d := range dims {
		var next [][]core.Value
		for _, t := range tuples {
			for _, v := range d.Class.LeafLevel().Values {
				nt := make([]core.Value, len(t)+1)
				copy(nt, t)
				nt[len(t)] = v
				next = append(next, nt)
			}
		}
		tuples = next
	}
	if len(dims) == 0 {
		return [][]core.Value{{}}
	}
	return tuples
}

// summable reports whether the measure may be summed over every named
// dimension — a dry-run of the marginal computation's summarizability.
func summable(o *core.StatObject, measure string, dims []string) bool {
	m, err := o.Measure(measure)
	if err != nil {
		return false
	}
	if m.Func == core.Avg || m.Func == core.Min || m.Func == core.Max {
		// Marginals of non-additive summary functions are not simple sums;
		// refuse rather than print misleading totals.
		return false
	}
	for _, name := range dims {
		d, err := o.Schema().Dimension(name)
		if err != nil {
			return false
		}
		if err := m.CheckAdditiveAlong(d.Name, d.Temporal); err != nil {
			return false
		}
	}
	return true
}

// align renders the grid with padded columns.
func align(grid [][]string) string {
	if len(grid) == 0 {
		return ""
	}
	widths := make([]int, len(grid[0]))
	for _, row := range grid {
		for i, s := range row {
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
