package marray

import (
	"fmt"

	"statcube/internal/btree"
	"statcube/internal/rle"
)

// Compressed is a header-compressed sparse array ([EOA81], Figure 21):
// only non-null values are stored, in linear order, and an accumulated
// run-length header maps logical (linearized) positions to physical ones
// and back. Two search paths over the header are provided — direct binary
// search on the accumulated sequence, and the B+tree the paper describes —
// so their costs can be compared.
type Compressed struct {
	shape  []int
	vals   []float64
	header *rle.Header
	// tree maps each present run's first logical position to (logical
	// start, physical start, length); Floor lookups answer both mappings.
	tree *btree.Tree[int, runRec]
}

type runRec struct {
	logStart  int
	physStart int
	length    int
}

// CompressDense builds a Compressed array from a Dense one.
func CompressDense(a *Dense) *Compressed {
	c := &Compressed{shape: append([]int(nil), a.Shape()...)}
	mask := a.PresenceMask()
	c.header = rle.BuildHeader(mask)
	c.vals = make([]float64, 0, c.header.Present())
	for i, present := range mask {
		if present {
			v, _ := a.GetLinear(i)
			c.vals = append(c.vals, v)
		}
	}
	c.buildTree()
	return c
}

// NewCompressed builds a Compressed array directly from sorted
// (linear position, value) pairs. Positions must be strictly ascending.
func NewCompressed(shape []int, positions []int, vals []float64) (*Compressed, error) {
	if len(positions) != len(vals) {
		return nil, fmt.Errorf("%w: %d positions for %d values", ErrShape, len(positions), len(vals))
	}
	n := Size(shape)
	c := &Compressed{shape: append([]int(nil), shape...)}
	var b rle.HeaderBuilder
	prev := -1
	for _, p := range positions {
		if p <= prev || p >= n {
			return nil, fmt.Errorf("%w: position %d (prev %d, size %d)", ErrShape, p, prev, n)
		}
		b.AppendRun(false, p-prev-1)
		b.AppendRun(true, 1)
		prev = p
	}
	b.AppendRun(false, n-prev-1)
	c.header = b.Build()
	c.vals = append([]float64(nil), vals...)
	c.buildTree()
	return c, nil
}

func (c *Compressed) buildTree() {
	var keys []int
	var recs []runRec
	c.header.ForEachPresentRun(func(logStart, physStart, length int) {
		keys = append(keys, logStart)
		recs = append(recs, runRec{logStart, physStart, length})
	})
	c.tree = btree.BulkLoad(keys, recs)
}

// Shape returns the array shape.
func (c *Compressed) Shape() []int { return c.shape }

// Cells returns the number of stored (non-null) values.
func (c *Compressed) Cells() int { return len(c.vals) }

// Get returns the cell at coords using binary search over the accumulated
// header sequence.
func (c *Compressed) Get(coords []int) (float64, bool, error) {
	pos, err := Linearize(coords, c.shape)
	if err != nil {
		return 0, false, err
	}
	phys, err := c.header.Forward(pos)
	if err != nil {
		recordLookup(false)
		return 0, false, nil // compressed out: null
	}
	recordLookup(true)
	return c.vals[phys], true, nil
}

// GetViaBTree answers the same lookup through the B+tree over the header —
// the structure Figure 21 draws.
func (c *Compressed) GetViaBTree(coords []int) (float64, bool, error) {
	pos, err := Linearize(coords, c.shape)
	if err != nil {
		return 0, false, err
	}
	_, rec, ok := c.tree.Floor(pos)
	if !ok || pos >= rec.logStart+rec.length {
		recordLookup(false)
		return 0, false, nil
	}
	recordLookup(true)
	return c.vals[rec.physStart+(pos-rec.logStart)], true, nil
}

// InversePosition maps a physical index back to array coordinates — the
// inverse mapping the header supports.
func (c *Compressed) InversePosition(physical int, dst []int) error {
	logical, err := c.header.Inverse(physical)
	if err != nil {
		return err
	}
	Delinearize(logical, c.shape, dst)
	return nil
}

// SumAll sums the stored values (nulls contribute nothing by construction).
func (c *Compressed) SumAll() float64 {
	var s float64
	for _, v := range c.vals {
		s += v
	}
	return s
}

// ForEachPresent visits every stored cell in linear order.
func (c *Compressed) ForEachPresent(fn func(coords []int, v float64) bool) {
	coords := make([]int, len(c.shape))
	stop := false
	c.header.ForEachPresentRun(func(logStart, physStart, length int) {
		if stop {
			return
		}
		for k := 0; k < length; k++ {
			Delinearize(logStart+k, c.shape, coords)
			if !fn(coords, c.vals[physStart+k]) {
				stop = true
				return
			}
		}
	})
}

// SizeBytes returns the compressed footprint: stored values plus header
// entries (two ints each in accounting terms).
func (c *Compressed) SizeBytes() int64 {
	return int64(len(c.vals)*8) + int64(c.header.SizeEntries()*16)
}

// NumRuns exposes the header run count.
func (c *Compressed) NumRuns() int { return c.header.SizeEntries() }
