package marray

import "statcube/internal/obs"

// Array-storage instrumentation, mirrored into the process-wide registry
// alongside each structure's own accounting fields:
//
//	marray.chunks_read          chunks touched by Get/RangeSum
//	marray.bytes_read           bytes those chunk reads represent
//	marray.compressed_lookups   point lookups against compressed arrays
//	marray.compressed_hits      lookups that found a stored (non-null) cell
//
// The hit ratio compressed_hits/compressed_lookups measures how often the
// header-compression scheme answers from stored cells versus inferring a
// null — the access pattern Figure 21's B+tree serves.
var (
	chunksReadC  = obs.Default().Counter("marray.chunks_read")
	bytesReadC   = obs.Default().Counter("marray.bytes_read")
	compLookupsC = obs.Default().Counter("marray.compressed_lookups")
	compHitsC    = obs.Default().Counter("marray.compressed_hits")
)

// chargeChunk records one chunk read of b bytes.
func (c *Chunked) chargeChunk(b int64) {
	c.chunksRead++
	c.bytesRead += b
	if obs.On() {
		chunksReadC.Inc()
		bytesReadC.Add(b)
	}
}

// recordLookup records one compressed-array point lookup and its outcome.
func recordLookup(hit bool) {
	if !obs.On() {
		return
	}
	compLookupsC.Inc()
	if hit {
		compHitsC.Inc()
	}
}
