// Package marray implements the multidimensional-array physical
// organizations of Section 6 of Shoshani's OLAP-vs-SDB survey — the MOLAP
// substrate of the reproduction:
//
//   - Dense: array linearization (Section 6.2, Figure 20) — the cross
//     product stored as one linear array with O(1) cell addressing, the
//     core idea of MOLAP products like Essbase [ArborSoft];
//   - Compressed: header compression for sparse arrays ([EOA81],
//     Figure 21) — nulls are compressed out and an accumulated run-length
//     header, searchable by binary search or a B+tree, provides the
//     forward and inverse mappings;
//   - Chunked: the data cube pre-partitioned into subcubes ([SS94, CD+95],
//     Figure 23) so range queries read only overlapping chunks;
//   - Extendible: incremental appends without restructuring ([RZ86],
//     Figure 24), with an index over the expansion events.
//
// All structures account the bytes they touch so benchmarks can compare
// I/O obligations, not just wall-clock time.
package marray

import (
	"errors"
	"fmt"

	"statcube/internal/bitvec"
)

// ErrShape is returned for invalid shapes or coordinates.
var ErrShape = errors.New("marray: invalid shape or coordinates")

// Strides returns row-major strides for a shape.
func Strides(shape []int) []int {
	s := make([]int, len(shape))
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = stride
		stride *= shape[i]
	}
	return s
}

// Size returns the number of cells of the full cross product.
func Size(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Linearize computes the linear position of coords in a row-major array —
// the "fairly simple well-known calculation" of Section 6.2.
func Linearize(coords, shape []int) (int, error) {
	if len(coords) != len(shape) {
		return 0, fmt.Errorf("%w: %d coords for %d dims", ErrShape, len(coords), len(shape))
	}
	pos := 0
	for i, c := range coords {
		if c < 0 || c >= shape[i] {
			return 0, fmt.Errorf("%w: coord %d out of [0,%d) in dim %d", ErrShape, c, shape[i], i)
		}
		pos = pos*shape[i] + c
	}
	return pos, nil
}

// Delinearize inverts Linearize into dst.
func Delinearize(pos int, shape, dst []int) {
	for i := len(shape) - 1; i >= 0; i-- {
		dst[i] = pos % shape[i]
		pos /= shape[i]
	}
}

// Dense is a linearized multidimensional array of float64 cells with a
// presence bitmap (a cell can be present-with-zero or absent/null). It
// stores the entire cross product: maximal speed, no compression.
type Dense struct {
	shape   []int
	data    []float64
	present *bitvec.Vector
	touched int64
}

// NewDense allocates a dense array for the shape.
func NewDense(shape []int) (*Dense, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: empty shape", ErrShape)
	}
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: dimension %d", ErrShape, d)
		}
	}
	n := Size(shape)
	return &Dense{
		shape:   append([]int(nil), shape...),
		data:    make([]float64, n),
		present: bitvec.New(n),
	}, nil
}

// MustNewDense is NewDense that panics on error.
func MustNewDense(shape []int) *Dense {
	d, err := NewDense(shape)
	if err != nil {
		panic(err)
	}
	return d
}

// Shape returns the array shape.
func (a *Dense) Shape() []int { return a.shape }

// Len returns the cross-product size.
func (a *Dense) Len() int { return len(a.data) }

// Cells returns the number of present (non-null) cells.
func (a *Dense) Cells() int { return a.present.Count() }

// Density returns the fraction of present cells.
func (a *Dense) Density() float64 { return float64(a.Cells()) / float64(len(a.data)) }

// Set stores v at coords and marks the cell present.
func (a *Dense) Set(coords []int, v float64) error {
	pos, err := Linearize(coords, a.shape)
	if err != nil {
		return err
	}
	a.data[pos] = v
	a.present.Set(pos)
	a.touched += 8
	return nil
}

// Add accumulates v into the cell.
func (a *Dense) Add(coords []int, v float64) error {
	pos, err := Linearize(coords, a.shape)
	if err != nil {
		return err
	}
	a.data[pos] += v
	a.present.Set(pos)
	a.touched += 8
	return nil
}

// Get returns the cell value and whether it is present. O(1): the
// linearization advantage over searching a relation.
func (a *Dense) Get(coords []int) (float64, bool, error) {
	pos, err := Linearize(coords, a.shape)
	if err != nil {
		return 0, false, err
	}
	a.touched += 8
	return a.data[pos], a.present.Get(pos), nil
}

// GetLinear returns the value at a linear position.
func (a *Dense) GetLinear(pos int) (float64, bool) {
	a.touched += 8
	return a.data[pos], a.present.Get(pos)
}

// SumAll sums every present cell.
func (a *Dense) SumAll() float64 {
	var s float64
	a.present.ForEach(func(i int) { s += a.data[i] })
	a.touched += int64(len(a.data) * 8)
	return s
}

// ForEachPresent visits every present cell in linear order.
func (a *Dense) ForEachPresent(fn func(coords []int, v float64) bool) {
	coords := make([]int, len(a.shape))
	stop := false
	a.present.ForEach(func(i int) {
		if stop {
			return
		}
		Delinearize(i, a.shape, coords)
		a.touched += 8
		if !fn(coords, a.data[i]) {
			stop = true
		}
	})
}

// PresenceMask returns the presence of every linear position, for building
// compressed representations.
func (a *Dense) PresenceMask() []bool {
	m := make([]bool, len(a.data))
	a.present.ForEach(func(i int) { m[i] = true })
	return m
}

// SizeBytes returns the storage footprint: the full cross product plus the
// presence bitmap.
func (a *Dense) SizeBytes() int64 {
	return int64(len(a.data)*8) + int64(a.present.SizeBytes())
}

// TouchedBytes returns cumulative bytes charged to operations.
func (a *Dense) TouchedBytes() int64 { return a.touched }

// ResetAccounting zeroes the touch counter.
func (a *Dense) ResetAccounting() { a.touched = 0 }
