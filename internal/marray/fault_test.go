package marray

import (
	"context"
	"errors"
	"testing"

	"statcube/internal/budget"
	"statcube/internal/fault"
)

// chunkedFixture builds a 10×10 array chunked 5×5 with every cell set.
func chunkedFixture(t *testing.T) *Chunked {
	t.Helper()
	c, err := NewChunked([]int{10, 10}, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if err := c.Set([]int{i, j}, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestRangeSumCtxFaultHook: an error injected at the per-chunk hook
// fails the query with the typed error and no partial sum; the same
// query re-run clean returns the full answer.
func TestRangeSumCtxFaultHook(t *testing.T) {
	c := chunkedFixture(t)
	// Third chunk read fails: MaxInjections=1 with the ordinal landing
	// mid-query is exercised via rate 1 — the very first chunk is hit.
	inj := fault.New(fault.Schedule{Seed: 4, Rate: 1, Mode: fault.Error, MaxInjections: 1,
		Points: []string{fault.PointMarrayChunk}})
	ctx := fault.WithInjector(context.Background(), inj)
	if _, err := c.RangeSumCtx(ctx, []int{0, 0}, []int{9, 9}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, err := c.RangeSumCtx(context.Background(), []int{0, 0}, []int{9, 9})
	if err != nil || got != 100 {
		t.Fatalf("clean query = %v, %v; want 100", got, err)
	}
}

// TestRangeSumCtxCanceled: a canceled context stops the chunk walk with
// the typed cancellation error.
func TestRangeSumCtxCanceled(t *testing.T) {
	c := chunkedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RangeSumCtx(ctx, []int{0, 0}, []int{9, 9}); !budget.IsCanceled(err) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
