package marray

import (
	"context"
	"fmt"

	"statcube/internal/budget"
	"statcube/internal/fault"
)

// Chunked is a data cube pre-partitioned into subcubes (Figure 23). A
// range query reads only the chunks that overlap it; the access software
// assembles the result from them (Section 6.4). Chunks of the symmetric
// partitioning are equal-sized; a workload-aware chunk shape can be chosen
// with OptimizeChunkShape, the heuristic stand-in for [CD+95]'s
// NP-complete analysis.
type Chunked struct {
	shape      []int
	chunkShape []int
	grid       []int // chunks per dimension
	chunks     []*chunk
	chunksRead int64
	bytesRead  int64
}

type chunk struct {
	data []float64
	used bool
}

// NewChunked creates a chunked array with the given chunk shape.
func NewChunked(shape, chunkShape []int) (*Chunked, error) {
	if len(shape) == 0 || len(chunkShape) != len(shape) {
		return nil, fmt.Errorf("%w: shape %v, chunk shape %v", ErrShape, shape, chunkShape)
	}
	c := &Chunked{
		shape:      append([]int(nil), shape...),
		chunkShape: append([]int(nil), chunkShape...),
		grid:       make([]int, len(shape)),
	}
	for i := range shape {
		if shape[i] <= 0 || chunkShape[i] <= 0 || chunkShape[i] > shape[i] {
			return nil, fmt.Errorf("%w: dim %d: extent %d, chunk %d", ErrShape, i, shape[i], chunkShape[i])
		}
		c.grid[i] = (shape[i] + chunkShape[i] - 1) / chunkShape[i]
	}
	c.chunks = make([]*chunk, Size(c.grid))
	return c, nil
}

// Shape returns the array shape.
func (c *Chunked) Shape() []int { return c.shape }

// ChunkShape returns the subcube dimensions.
func (c *Chunked) ChunkShape() []int { return c.chunkShape }

// NumChunks returns the number of allocated (non-empty) chunks.
func (c *Chunked) NumChunks() int {
	n := 0
	for _, ch := range c.chunks {
		if ch != nil {
			n++
		}
	}
	return n
}

// locate returns the chunk index and the offset within the chunk.
func (c *Chunked) locate(coords []int) (int, int, error) {
	if len(coords) != len(c.shape) {
		return 0, 0, fmt.Errorf("%w: %d coords for %d dims", ErrShape, len(coords), len(c.shape))
	}
	ci, off := 0, 0
	for i, x := range coords {
		if x < 0 || x >= c.shape[i] {
			return 0, 0, fmt.Errorf("%w: coord %d out of [0,%d)", ErrShape, x, c.shape[i])
		}
		ci = ci*c.grid[i] + x/c.chunkShape[i]
		off = off*c.chunkShape[i] + x%c.chunkShape[i]
	}
	return ci, off, nil
}

// Set stores v at coords, allocating the owning chunk on first touch.
func (c *Chunked) Set(coords []int, v float64) error {
	ci, off, err := c.locate(coords)
	if err != nil {
		return err
	}
	ch := c.chunks[ci]
	if ch == nil {
		ch = &chunk{data: make([]float64, Size(c.chunkShape))}
		c.chunks[ci] = ch
	}
	ch.data[off] = v
	ch.used = true
	return nil
}

// Get returns the value at coords (zero for untouched cells), charging one
// chunk read.
func (c *Chunked) Get(coords []int) (float64, error) {
	ci, off, err := c.locate(coords)
	if err != nil {
		return 0, err
	}
	c.chargeChunk(int64(Size(c.chunkShape) * 8))
	if ch := c.chunks[ci]; ch != nil {
		return ch.data[off], nil
	}
	return 0, nil
}

// RangeSum sums the cells with lo[i] <= coord[i] <= hi[i], reading only
// the chunks overlapping the box and charging each exactly once — the
// benefit the pre-partitioning buys (Section 6.4).
func (c *Chunked) RangeSum(lo, hi []int) (float64, error) {
	return c.RangeSumCtx(context.Background(), lo, hi)
}

// RangeSumCtx is RangeSum under a context: cancellation is polled and
// the marray.chunk fault hook consulted once per chunk read — each chunk
// being the unit a real array store would fetch from disk, it is the
// natural place for a read to fail. A failed query returns the typed
// error and no partial sum.
func (c *Chunked) RangeSumCtx(ctx context.Context, lo, hi []int) (float64, error) {
	if len(lo) != len(c.shape) || len(hi) != len(c.shape) {
		return 0, fmt.Errorf("%w: range arity", ErrShape)
	}
	for i := range lo {
		if lo[i] < 0 || hi[i] >= c.shape[i] || lo[i] > hi[i] {
			return 0, fmt.Errorf("%w: range [%d,%d] in dim %d (extent %d)", ErrShape, lo[i], hi[i], i, c.shape[i])
		}
	}
	n := len(c.shape)
	cLo := make([]int, n) // chunk-grid bounds
	cHi := make([]int, n)
	for i := range lo {
		cLo[i] = lo[i] / c.chunkShape[i]
		cHi[i] = hi[i] / c.chunkShape[i]
	}
	sum := 0.0
	ci := make([]int, n)
	copy(ci, cLo)
	inj := fault.From(ctx)
	for {
		if err := budget.Check(ctx); err != nil {
			return 0, err
		}
		if err := inj.Hit(fault.PointMarrayChunk); err != nil {
			return 0, err
		}
		sum += c.sumWithinChunk(ci, lo, hi)
		// Advance the chunk-grid odometer.
		d := n - 1
		for d >= 0 {
			ci[d]++
			if ci[d] <= cHi[d] {
				break
			}
			ci[d] = cLo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return sum, nil
}

// sumWithinChunk sums the query box's intersection with one chunk.
func (c *Chunked) sumWithinChunk(chunkCoords, lo, hi []int) float64 {
	idx := 0
	for i, g := range c.grid {
		idx = idx*g + chunkCoords[i]
	}
	c.chargeChunk(int64(Size(c.chunkShape) * 8))
	ch := c.chunks[idx]
	if ch == nil || !ch.used {
		return 0
	}
	n := len(c.shape)
	// Per-dimension intersection in chunk-local coordinates.
	iLo := make([]int, n)
	iHi := make([]int, n)
	for i := range iLo {
		base := chunkCoords[i] * c.chunkShape[i]
		l := lo[i] - base
		if l < 0 {
			l = 0
		}
		h := hi[i] - base
		if limit := c.chunkShape[i] - 1; h > limit {
			h = limit
		}
		// Clip to the array's edge for boundary chunks.
		if limit := c.shape[i] - base - 1; h > limit {
			h = limit
		}
		if l > h {
			return 0
		}
		iLo[i], iHi[i] = l, h
	}
	sum := 0.0
	cur := make([]int, n)
	copy(cur, iLo)
	for {
		off := 0
		for i := range cur {
			off = off*c.chunkShape[i] + cur[i]
		}
		sum += ch.data[off]
		d := n - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= iHi[d] {
				break
			}
			cur[d] = iLo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return sum
}

// ChunksRead returns the cumulative chunks charged to reads.
func (c *Chunked) ChunksRead() int64 { return c.chunksRead }

// BytesRead returns the cumulative bytes charged to reads.
func (c *Chunked) BytesRead() int64 { return c.bytesRead }

// ResetAccounting zeroes the read counters.
func (c *Chunked) ResetAccounting() { c.chunksRead, c.bytesRead = 0, 0 }

// RangeQuery describes one box query of a workload, for chunk-shape
// optimization.
type RangeQuery struct {
	Lo, Hi []int
}

// chunksTouched computes how many chunks a query box overlaps for a
// candidate chunk shape.
func chunksTouched(q RangeQuery, chunkShape []int) int64 {
	n := int64(1)
	for i := range chunkShape {
		n *= int64(q.Hi[i]/chunkShape[i] - q.Lo[i]/chunkShape[i] + 1)
	}
	return n
}

// OptimizeChunkShape picks a chunk shape for the shape that minimizes the
// total chunks touched by the query log, subject to each chunk holding at
// most maxChunkCells cells. The exact problem is NP-complete [CD+95]; this
// is a greedy coordinate-descent heuristic: starting from a symmetric
// shape, repeatedly move one dimension to a divisor candidate if it
// reduces the workload cost.
func OptimizeChunkShape(shape []int, queries []RangeQuery, maxChunkCells int) []int {
	n := len(shape)
	candidates := make([][]int, n)
	for i, ext := range shape {
		for s := 1; s <= ext; s++ {
			candidates[i] = append(candidates[i], s)
		}
	}
	cur := SymmetricChunkShape(shape, maxChunkCells)
	cells := func(cs []int) int {
		c := 1
		for _, s := range cs {
			c *= s
		}
		return c
	}
	cost := func(cs []int) int64 {
		if cells(cs) > maxChunkCells {
			return 1 << 62
		}
		var t int64
		for _, q := range queries {
			t += chunksTouched(q, cs)
		}
		return t
	}
	bestCost, bestCells := cost(cur), cells(cur)
	improved := true
	for improved {
		improved = false
		for d := 0; d < n; d++ {
			for _, s := range candidates[d] {
				if s == cur[d] {
					continue
				}
				trial := append([]int(nil), cur...)
				trial[d] = s
				c, cl := cost(trial), cells(trial)
				// Accept strict cost improvements, and equal-cost moves
				// that shrink the chunk: freeing budget in one dimension
				// lets a later pass widen another, escaping the plateaus
				// the per-coordinate search otherwise stalls on.
				if c < bestCost || (c == bestCost && cl < bestCells) {
					bestCost, bestCells = c, cl
					cur = trial
					improved = true
				}
			}
		}
	}
	return cur
}

// SymmetricChunkShape returns the symmetric partitioning of Section 6.4:
// equal chunk extents per dimension (clipped to each extent), sized so a
// chunk holds at most maxChunkCells cells.
func SymmetricChunkShape(shape []int, maxChunkCells int) []int {
	n := len(shape)
	side := 1
	for {
		next := side + 1
		cells := 1
		for _, ext := range shape {
			c := next
			if c > ext {
				c = ext
			}
			cells *= c
		}
		if cells > maxChunkCells {
			break
		}
		side = next
		capped := true
		for _, ext := range shape {
			if side < ext {
				capped = false
			}
		}
		if capped {
			break
		}
	}
	cs := make([]int, n)
	for i, ext := range shape {
		cs[i] = side
		if cs[i] > ext {
			cs[i] = ext
		}
	}
	return cs
}

// WorkloadCost returns the total chunks a query log would touch with the
// given chunk shape, without building the array (planning-time estimate).
func WorkloadCost(queries []RangeQuery, chunkShape []int) int64 {
	var t int64
	for _, q := range queries {
		t += chunksTouched(q, chunkShape)
	}
	return t
}
