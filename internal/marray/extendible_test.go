package marray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtendibleValidation(t *testing.T) {
	if _, err := NewExtendible(nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := NewExtendible([]int{0}); err == nil {
		t.Error("zero extent should fail")
	}
	e, _ := NewExtendible([]int{2, 2})
	if err := e.Append(5, 1); err == nil {
		t.Error("bad dimension should fail")
	}
	if err := e.Append(0, 0); err == nil {
		t.Error("zero count should fail")
	}
}

func TestExtendibleInitialBlock(t *testing.T) {
	e, _ := NewExtendible([]int{2, 3})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if err := e.Set([]int{i, j}, float64(i*10+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v, err := e.Get([]int{i, j})
			if err != nil || v != float64(i*10+j) {
				t.Fatalf("cell (%d,%d) = %v, %v", i, j, v, err)
			}
		}
	}
	if e.NumSlabs() != 1 {
		t.Errorf("NumSlabs = %d", e.NumSlabs())
	}
}

func TestExtendibleAppendPreservesAndExtends(t *testing.T) {
	e, _ := NewExtendible([]int{2, 2})
	_ = e.Set([]int{1, 1}, 11)
	// Extend dim 0 by 2: new rows 2..3.
	if err := e.Append(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := e.Extents(); got[0] != 4 || got[1] != 2 {
		t.Fatalf("Extents = %v", got)
	}
	// Old data intact.
	v, _ := e.Get([]int{1, 1})
	if v != 11 {
		t.Errorf("old cell = %v", v)
	}
	// New cells writable.
	if err := e.Set([]int{3, 1}, 31); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Get([]int{3, 1})
	if v != 31 {
		t.Errorf("new cell = %v", v)
	}
	// Now extend dim 1: the corner cell (3,2) belongs to the latest slab.
	if err := e.Append(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Set([]int{3, 2}, 32); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Get([]int{3, 2})
	if v != 32 {
		t.Errorf("corner cell = %v", v)
	}
	if e.NumSlabs() != 3 {
		t.Errorf("NumSlabs = %d", e.NumSlabs())
	}
	// Out of range still rejected.
	if _, err := e.Get([]int{4, 0}); err == nil {
		t.Error("beyond extent should fail")
	}
}

// TestExtendibleVsDenseOracle interleaves appends and writes, comparing
// against a rebuilt-from-scratch map oracle.
func TestExtendibleVsDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := NewExtendible([]int{2, 2, 2})
	oracle := map[[3]int]float64{}
	extents := []int{2, 2, 2}
	for step := 0; step < 500; step++ {
		switch rng.Intn(10) {
		case 0: // append
			d := rng.Intn(3)
			n := rng.Intn(3) + 1
			if err := e.Append(d, n); err != nil {
				t.Fatal(err)
			}
			extents[d] += n
		default: // write
			coords := [3]int{rng.Intn(extents[0]), rng.Intn(extents[1]), rng.Intn(extents[2])}
			v := float64(rng.Intn(1000))
			if err := e.Set(coords[:], v); err != nil {
				t.Fatalf("Set %v (extents %v): %v", coords, extents, err)
			}
			oracle[coords] = v
		}
	}
	for coords, want := range oracle {
		got, err := e.Get(coords[:])
		if err != nil || got != want {
			t.Fatalf("cell %v = %v, %v; want %v", coords, got, err, want)
		}
	}
}

func TestExtendibleRangeSum(t *testing.T) {
	e, _ := NewExtendible([]int{3, 3})
	_ = e.Append(0, 2)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			_ = e.Set([]int{i, j}, 1)
		}
	}
	got, err := e.RangeSum([]int{1, 0}, []int{4, 2})
	if err != nil || got != 12 {
		t.Errorf("RangeSum = %v, %v, want 12", got, err)
	}
	if _, err := e.RangeSum([]int{0, 0}, []int{9, 0}); err == nil {
		t.Error("out of range should fail")
	}
}

func TestExtendibleRebuild(t *testing.T) {
	e, _ := NewExtendible([]int{2, 2})
	_ = e.Set([]int{0, 0}, 1)
	_ = e.Append(1, 2)
	_ = e.Set([]int{1, 3}, 5)
	d, moved, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if moved != int64(2*4*8) {
		t.Errorf("moved = %d", moved)
	}
	v, _, _ := d.Get([]int{0, 0})
	if v != 1 {
		t.Errorf("rebuilt (0,0) = %v", v)
	}
	v, _, _ = d.Get([]int{1, 3})
	if v != 5 {
		t.Errorf("rebuilt (1,3) = %v", v)
	}
}

func TestExtendibleAppendBytesCheaperThanRebuild(t *testing.T) {
	// Daily appends: the incremental structure allocates only the new
	// slab, while rebuild moves the whole cube each time (Section 6.5).
	e, _ := NewExtendible([]int{50, 50}) // 2500 cells
	before := e.BytesWritten()
	_ = e.Append(0, 1) // one new day: 50 cells
	appendCost := e.BytesWritten() - before
	_, rebuildCost, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if appendCost*10 > rebuildCost {
		t.Errorf("append %d not clearly cheaper than rebuild %d", appendCost, rebuildCost)
	}
}

// Property: after arbitrary appends, Get(Set(x)) = x everywhere in range.
func TestQuickExtendibleSetGet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewExtendible([]int{1 + rng.Intn(3), 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		for k := 0; k < 5; k++ {
			if err := e.Append(rng.Intn(2), 1+rng.Intn(2)); err != nil {
				return false
			}
		}
		ext := e.Extents()
		sum := 0.0
		for i := 0; i < ext[0]; i++ {
			for j := 0; j < ext[1]; j++ {
				v := float64(rng.Intn(50))
				if err := e.Set([]int{i, j}, v); err != nil {
					return false
				}
				sum += v
			}
		}
		got, err := e.RangeSum([]int{0, 0}, []int{ext[0] - 1, ext[1] - 1})
		return err == nil && math.Abs(got-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
