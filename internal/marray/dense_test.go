package marray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearizeDelinearize(t *testing.T) {
	shape := []int{3, 4, 5}
	seen := map[int]bool{}
	dst := make([]int, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				pos, err := Linearize([]int{i, j, k}, shape)
				if err != nil {
					t.Fatal(err)
				}
				if seen[pos] {
					t.Fatalf("collision at %d", pos)
				}
				seen[pos] = true
				Delinearize(pos, shape, dst)
				if dst[0] != i || dst[1] != j || dst[2] != k {
					t.Fatalf("round trip (%d,%d,%d) -> %v", i, j, k, dst)
				}
			}
		}
	}
	if len(seen) != 60 {
		t.Errorf("covered %d positions", len(seen))
	}
}

func TestLinearizeErrors(t *testing.T) {
	shape := []int{2, 2}
	if _, err := Linearize([]int{0}, shape); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := Linearize([]int{2, 0}, shape); err == nil {
		t.Error("out of range should fail")
	}
	if _, err := Linearize([]int{0, -1}, shape); err == nil {
		t.Error("negative should fail")
	}
}

func TestStridesAndSize(t *testing.T) {
	s := Strides([]int{2, 3, 4})
	if s[0] != 12 || s[1] != 4 || s[2] != 1 {
		t.Errorf("Strides = %v", s)
	}
	if Size([]int{2, 3, 4}) != 24 {
		t.Errorf("Size = %d", Size([]int{2, 3, 4}))
	}
}

func TestDenseBasics(t *testing.T) {
	a := MustNewDense([]int{2, 3})
	if a.Len() != 6 || a.Cells() != 0 {
		t.Errorf("fresh: len=%d cells=%d", a.Len(), a.Cells())
	}
	if err := a.Set([]int{1, 2}, 5); err != nil {
		t.Fatal(err)
	}
	v, ok, err := a.Get([]int{1, 2})
	if err != nil || !ok || v != 5 {
		t.Errorf("Get = %v, %v, %v", v, ok, err)
	}
	_, ok, _ = a.Get([]int{0, 0})
	if ok {
		t.Error("absent cell reported present")
	}
	if err := a.Add([]int{1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	v, _, _ = a.Get([]int{1, 2})
	if v != 8 {
		t.Errorf("after Add = %v", v)
	}
	// Present-with-zero is distinct from absent.
	_ = a.Set([]int{0, 1}, 0)
	_, ok, _ = a.Get([]int{0, 1})
	if !ok {
		t.Error("zero cell should be present")
	}
	if a.Cells() != 2 {
		t.Errorf("Cells = %d", a.Cells())
	}
	if a.Density() != 2.0/6 {
		t.Errorf("Density = %v", a.Density())
	}
}

func TestDenseErrors(t *testing.T) {
	if _, err := NewDense(nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := NewDense([]int{2, 0}); err == nil {
		t.Error("zero extent should fail")
	}
	a := MustNewDense([]int{2})
	if err := a.Set([]int{5}, 1); err == nil {
		t.Error("out of range Set should fail")
	}
}

func TestDenseSumAndIteration(t *testing.T) {
	a := MustNewDense([]int{4, 4})
	want := 0.0
	for i := 0; i < 4; i++ {
		_ = a.Set([]int{i, i}, float64(i+1))
		want += float64(i + 1)
	}
	if got := a.SumAll(); got != want {
		t.Errorf("SumAll = %v, want %v", got, want)
	}
	count := 0
	a.ForEachPresent(func(coords []int, v float64) bool {
		if coords[0] != coords[1] {
			t.Errorf("unexpected cell %v", coords)
		}
		count++
		return true
	})
	if count != 4 {
		t.Errorf("visited %d", count)
	}
	// Early stop.
	count = 0
	a.ForEachPresent(func([]int, float64) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestDenseAccounting(t *testing.T) {
	a := MustNewDense([]int{10})
	a.ResetAccounting()
	_ = a.Set([]int{1}, 1)
	_, _, _ = a.Get([]int{1})
	if a.TouchedBytes() != 16 {
		t.Errorf("TouchedBytes = %d", a.TouchedBytes())
	}
	if a.SizeBytes() < 80 {
		t.Errorf("SizeBytes = %d", a.SizeBytes())
	}
}

// Property: a Dense array agrees with a map oracle.
func TestQuickDenseVsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{rng.Intn(5) + 1, rng.Intn(5) + 1, rng.Intn(5) + 1}
		a := MustNewDense(shape)
		oracle := map[int]float64{}
		for op := 0; op < 200; op++ {
			coords := []int{rng.Intn(shape[0]), rng.Intn(shape[1]), rng.Intn(shape[2])}
			pos, _ := Linearize(coords, shape)
			v := float64(rng.Intn(100))
			if rng.Intn(2) == 0 {
				_ = a.Set(coords, v)
				oracle[pos] = v
			} else {
				_ = a.Add(coords, v)
				oracle[pos] += v
			}
		}
		for pos, want := range oracle {
			coords := make([]int, 3)
			Delinearize(pos, shape, coords)
			got, ok, _ := a.Get(coords)
			if !ok || got != want {
				return false
			}
		}
		return a.Cells() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
