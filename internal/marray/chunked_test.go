package marray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillChunked(t testing.TB, shape, chunkShape []int, seed int64) (*Chunked, *Dense) {
	t.Helper()
	c, err := NewChunked(shape, chunkShape)
	if err != nil {
		t.Fatal(err)
	}
	d := MustNewDense(shape)
	rng := rand.New(rand.NewSource(seed))
	coords := make([]int, len(shape))
	for pos := 0; pos < Size(shape); pos++ {
		Delinearize(pos, shape, coords)
		v := float64(rng.Intn(100))
		if err := c.Set(coords, v); err != nil {
			t.Fatal(err)
		}
		_ = d.Set(coords, v)
	}
	return c, d
}

func TestChunkedValidation(t *testing.T) {
	if _, err := NewChunked(nil, nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := NewChunked([]int{4}, []int{5}); err == nil {
		t.Error("chunk larger than extent should fail")
	}
	if _, err := NewChunked([]int{4}, []int{0}); err == nil {
		t.Error("zero chunk should fail")
	}
	if _, err := NewChunked([]int{4, 4}, []int{2}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestChunkedGetSet(t *testing.T) {
	c, _ := NewChunked([]int{10, 10}, []int{3, 3})
	if err := c.Set([]int{9, 9}, 7); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]int{9, 9})
	if err != nil || v != 7 {
		t.Errorf("Get = %v, %v", v, err)
	}
	v, err = c.Get([]int{0, 0}) // untouched chunk
	if err != nil || v != 0 {
		t.Errorf("untouched Get = %v, %v", v, err)
	}
	if err := c.Set([]int{10, 0}, 1); err == nil {
		t.Error("out of range should fail")
	}
}

func TestChunkedRangeSumMatchesDense(t *testing.T) {
	shape := []int{17, 13, 7} // non-divisible extents exercise boundary chunks
	c, d := fillChunked(t, shape, []int{4, 4, 4}, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i := range shape {
			a, b := rng.Intn(shape[i]), rng.Intn(shape[i])
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		got, err := c.RangeSum(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle via dense.
		want := 0.0
		cur := append([]int(nil), lo...)
		for {
			v, _, _ := d.Get(cur)
			want += v
			k := 2
			for k >= 0 {
				cur[k]++
				if cur[k] <= hi[k] {
					break
				}
				cur[k] = lo[k]
				k--
			}
			if k < 0 {
				break
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("RangeSum(%v,%v) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestChunkedRangeErrors(t *testing.T) {
	c, _ := NewChunked([]int{5, 5}, []int{2, 2})
	if _, err := c.RangeSum([]int{0}, []int{1}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := c.RangeSum([]int{3, 0}, []int{1, 1}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := c.RangeSum([]int{0, 0}, []int{5, 1}); err == nil {
		t.Error("out of range should fail")
	}
}

func TestChunkedReadsOnlyOverlappingChunks(t *testing.T) {
	shape := []int{16, 16}
	c, _ := fillChunked(t, shape, []int{4, 4}, 3)
	c.ResetAccounting()
	// A query inside one chunk touches exactly one chunk.
	if _, err := c.RangeSum([]int{0, 0}, []int{3, 3}); err != nil {
		t.Fatal(err)
	}
	if c.ChunksRead() != 1 {
		t.Errorf("single-chunk query read %d chunks", c.ChunksRead())
	}
	c.ResetAccounting()
	// A 5x5 box crossing one boundary touches 2x2 chunks.
	if _, err := c.RangeSum([]int{2, 2}, []int{6, 6}); err != nil {
		t.Fatal(err)
	}
	if c.ChunksRead() != 4 {
		t.Errorf("crossing query read %d chunks, want 4", c.ChunksRead())
	}
	// The whole array touches all 16 chunks.
	c.ResetAccounting()
	if _, err := c.RangeSum([]int{0, 0}, []int{15, 15}); err != nil {
		t.Fatal(err)
	}
	if c.ChunksRead() != 16 {
		t.Errorf("full scan read %d chunks", c.ChunksRead())
	}
}

func TestSymmetricChunkShape(t *testing.T) {
	cs := SymmetricChunkShape([]int{100, 100}, 64)
	if cs[0] != cs[1] {
		t.Errorf("not symmetric: %v", cs)
	}
	if cs[0]*cs[1] > 64 {
		t.Errorf("chunk too big: %v", cs)
	}
	// Clipped by small extents.
	cs = SymmetricChunkShape([]int{2, 100}, 1000)
	if cs[0] != 2 {
		t.Errorf("not clipped: %v", cs)
	}
}

func TestOptimizeChunkShapeBeatsSymmetricOnSkewedWorkload(t *testing.T) {
	shape := []int{64, 64}
	// Workload: long thin row scans (all of dim 1, one index of dim 0).
	var queries []RangeQuery
	for i := 0; i < 32; i++ {
		queries = append(queries, RangeQuery{Lo: []int{i, 0}, Hi: []int{i, 63}})
	}
	sym := SymmetricChunkShape(shape, 64)
	opt := OptimizeChunkShape(shape, queries, 64)
	symCost := WorkloadCost(queries, sym)
	optCost := WorkloadCost(queries, opt)
	if optCost > symCost {
		t.Errorf("optimized cost %d worse than symmetric %d (shapes %v vs %v)",
			optCost, symCost, opt, sym)
	}
	// The heuristic should discover a row-shaped chunk (wide in dim 1).
	if opt[1] <= opt[0] {
		t.Errorf("expected row-shaped chunks, got %v", opt)
	}
}

// Property: chunked range sum equals dense oracle for arbitrary chunk
// shapes.
func TestQuickChunkedOracle(t *testing.T) {
	f := func(seed int64, c0, c1 uint8) bool {
		shape := []int{9, 11}
		cs := []int{int(c0)%9 + 1, int(c1)%11 + 1}
		c, d := fillChunked(t, shape, cs, seed)
		rng := rand.New(rand.NewSource(seed + 99))
		for trial := 0; trial < 10; trial++ {
			lo := make([]int, 2)
			hi := make([]int, 2)
			for i := range shape {
				a, b := rng.Intn(shape[i]), rng.Intn(shape[i])
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
			}
			got, err := c.RangeSum(lo, hi)
			if err != nil {
				return false
			}
			want := 0.0
			cur := append([]int(nil), lo...)
			for {
				v, _, _ := d.Get(cur)
				want += v
				k := 1
				for k >= 0 {
					cur[k]++
					if cur[k] <= hi[k] {
						break
					}
					cur[k] = lo[k]
					k--
				}
				if k < 0 {
					break
				}
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
