package marray

import (
	"fmt"
	"sort"
)

// Extendible is the extendible array of Rotem & Zhao [RZ86] (Section 6.5,
// Figure 24): a multidimensional array that grows by appending along any
// dimension without restructuring the existing data. Each append allocates
// one new slab covering the added index range across the other dimensions'
// extents at append time; an index over the expansion history locates the
// slab owning any cell in O(dims · log appends).
//
// The alternative — relinearizing the whole cube on every extent change —
// is provided by Rebuild for the benchmark comparison.
type Extendible struct {
	extents []int
	events  []*slab
	// perDim[d] holds, sorted by start, the (start, event index) pairs of
	// expansions along dimension d — the index structure of Figure 24.
	perDim       [][]dimEntry
	bytesWritten int64
}

type dimEntry struct {
	start int
	event int
}

type slab struct {
	dim     int   // dimension expanded (-1 for the initial block)
	lo, hi  int   // index range covered along dim (initial block: all dims from 0)
	extents []int // extents of every dimension at creation time
	strides []int
	data    []float64
}

// NewExtendible creates an extendible array with the initial extents.
func NewExtendible(initial []int) (*Extendible, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("%w: empty shape", ErrShape)
	}
	for _, d := range initial {
		if d <= 0 {
			return nil, fmt.Errorf("%w: dimension %d", ErrShape, d)
		}
	}
	e := &Extendible{
		extents: append([]int(nil), initial...),
		perDim:  make([][]dimEntry, len(initial)),
	}
	s := &slab{
		dim:     -1,
		lo:      0,
		hi:      initial[0],
		extents: append([]int(nil), initial...),
		strides: Strides(initial),
		data:    make([]float64, Size(initial)),
	}
	e.events = append(e.events, s)
	e.bytesWritten += int64(len(s.data) * 8)
	for d := range initial {
		e.perDim[d] = append(e.perDim[d], dimEntry{start: 0, event: 0})
	}
	return e, nil
}

// Extents returns the current per-dimension extents.
func (e *Extendible) Extents() []int { return append([]int(nil), e.extents...) }

// Append grows dimension dim by count indices — the daily append of
// Section 6.5. Only the new slab is allocated; nothing is moved.
func (e *Extendible) Append(dim, count int) error {
	if dim < 0 || dim >= len(e.extents) {
		return fmt.Errorf("%w: dimension %d", ErrShape, dim)
	}
	if count <= 0 {
		return fmt.Errorf("%w: append count %d", ErrShape, count)
	}
	lo := e.extents[dim]
	e.extents[dim] += count
	ext := append([]int(nil), e.extents...)
	// The slab's own extent along dim is just the added range.
	slabShape := append([]int(nil), ext...)
	slabShape[dim] = count
	s := &slab{
		dim:     dim,
		lo:      lo,
		hi:      lo + count,
		extents: ext,
		strides: Strides(slabShape),
		data:    make([]float64, Size(slabShape)),
	}
	e.events = append(e.events, s)
	e.bytesWritten += int64(len(s.data) * 8)
	e.perDim[dim] = append(e.perDim[dim], dimEntry{start: lo, event: len(e.events) - 1})
	return nil
}

// owner returns the slab holding coords and the linear offset within it.
func (e *Extendible) owner(coords []int) (*slab, int, error) {
	if len(coords) != len(e.extents) {
		return nil, 0, fmt.Errorf("%w: %d coords for %d dims", ErrShape, len(coords), len(e.extents))
	}
	best := -1
	for d, x := range coords {
		if x < 0 || x >= e.extents[d] {
			return nil, 0, fmt.Errorf("%w: coord %d out of [0,%d) in dim %d", ErrShape, x, e.extents[d], d)
		}
		entries := e.perDim[d]
		// Last expansion of dim d starting at or before x.
		i := sort.Search(len(entries), func(i int) bool { return entries[i].start > x }) - 1
		if ev := entries[i].event; ev > best {
			best = ev
		}
	}
	s := e.events[best]
	// Offset within the slab: along s.dim the local coordinate is
	// coords[s.dim]-s.lo; other dimensions use the global coordinate.
	off := 0
	for d, x := range coords {
		local := x
		if d == s.dim {
			local = x - s.lo
		}
		off += local * s.strides[d]
	}
	return s, off, nil
}

// Set stores v at coords.
func (e *Extendible) Set(coords []int, v float64) error {
	s, off, err := e.owner(coords)
	if err != nil {
		return err
	}
	s.data[off] = v
	return nil
}

// Add accumulates v into the cell.
func (e *Extendible) Add(coords []int, v float64) error {
	s, off, err := e.owner(coords)
	if err != nil {
		return err
	}
	s.data[off] += v
	return nil
}

// Get returns the value at coords (zero for never-written cells).
func (e *Extendible) Get(coords []int) (float64, error) {
	s, off, err := e.owner(coords)
	if err != nil {
		return 0, err
	}
	return s.data[off], nil
}

// RangeSum sums the box lo..hi (inclusive), visiting each cell through the
// owner index. Rotem & Zhao's access methods support range queries on this
// structure; a production system would intersect the box with slabs —
// cell-at-a-time is sufficient for the correctness and accounting
// comparisons here.
func (e *Extendible) RangeSum(lo, hi []int) (float64, error) {
	n := len(e.extents)
	if len(lo) != n || len(hi) != n {
		return 0, fmt.Errorf("%w: range arity", ErrShape)
	}
	for i := range lo {
		if lo[i] < 0 || hi[i] >= e.extents[i] || lo[i] > hi[i] {
			return 0, fmt.Errorf("%w: range [%d,%d] in dim %d", ErrShape, lo[i], hi[i], i)
		}
	}
	cur := append([]int(nil), lo...)
	sum := 0.0
	for {
		v, err := e.Get(cur)
		if err != nil {
			return 0, err
		}
		sum += v
		d := n - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= hi[d] {
				break
			}
			cur[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return sum, nil
}

// NumSlabs returns the number of allocation events (initial block plus
// appends).
func (e *Extendible) NumSlabs() int { return len(e.events) }

// BytesWritten returns cumulative bytes allocated — the restructuring cost
// an extendible array avoids paying repeatedly.
func (e *Extendible) BytesWritten() int64 { return e.bytesWritten }

// Rebuild copies the array into one dense linearization of the current
// extents — what a non-extendible MOLAP store must do on every extent
// change. It returns the dense copy and the bytes moved.
func (e *Extendible) Rebuild() (*Dense, int64, error) {
	d, err := NewDense(e.extents)
	if err != nil {
		return nil, 0, err
	}
	cur := make([]int, len(e.extents))
	var moved int64
	for {
		v, err := e.Get(cur)
		if err != nil {
			return nil, 0, err
		}
		if err := d.Set(cur, v); err != nil {
			return nil, 0, err
		}
		moved += 8
		k := len(cur) - 1
		for k >= 0 {
			cur[k]++
			if cur[k] < e.extents[k] {
				break
			}
			cur[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return d, moved, nil
}
