package marray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sparseDense builds a random sparse dense array for compression tests.
func sparseDense(shape []int, density float64, seed int64) *Dense {
	a := MustNewDense(shape)
	rng := rand.New(rand.NewSource(seed))
	coords := make([]int, len(shape))
	for pos := 0; pos < a.Len(); pos++ {
		if rng.Float64() < density {
			Delinearize(pos, shape, coords)
			_ = a.Set(coords, float64(rng.Intn(1000))+1)
		}
	}
	return a
}

func TestCompressDenseRoundTrip(t *testing.T) {
	shape := []int{7, 9, 5}
	a := sparseDense(shape, 0.2, 1)
	c := CompressDense(a)
	if c.Cells() != a.Cells() {
		t.Fatalf("Cells = %d, want %d", c.Cells(), a.Cells())
	}
	coords := make([]int, 3)
	for pos := 0; pos < a.Len(); pos++ {
		Delinearize(pos, shape, coords)
		wantV, wantOK, _ := a.Get(coords)
		gotV, gotOK, err := c.Get(coords)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("cell %v: got (%v,%v), want (%v,%v)", coords, gotV, gotOK, wantV, wantOK)
		}
		// The B+tree path answers identically.
		btV, btOK, err := c.GetViaBTree(coords)
		if err != nil {
			t.Fatal(err)
		}
		if btOK != wantOK || (wantOK && btV != wantV) {
			t.Fatalf("btree cell %v: got (%v,%v), want (%v,%v)", coords, btV, btOK, wantV, wantOK)
		}
	}
}

func TestCompressedSumMatchesDense(t *testing.T) {
	a := sparseDense([]int{20, 20}, 0.1, 2)
	c := CompressDense(a)
	if math.Abs(c.SumAll()-a.SumAll()) > 1e-9 {
		t.Errorf("sum %v vs %v", c.SumAll(), a.SumAll())
	}
}

func TestCompressedInverseMapping(t *testing.T) {
	a := sparseDense([]int{6, 6}, 0.3, 3)
	c := CompressDense(a)
	coords := make([]int, 2)
	for p := 0; p < c.Cells(); p++ {
		if err := c.InversePosition(p, coords); err != nil {
			t.Fatal(err)
		}
		v, ok, _ := c.Get(coords)
		if !ok {
			t.Fatalf("inverse of %d -> %v maps to absent cell", p, coords)
		}
		_ = v
	}
	if err := c.InversePosition(c.Cells(), coords); err == nil {
		t.Error("out of range inverse should fail")
	}
}

func TestCompressedSpaceSavings(t *testing.T) {
	a := sparseDense([]int{50, 50, 10}, 0.01, 4)
	c := CompressDense(a)
	if c.SizeBytes() >= a.SizeBytes()/10 {
		t.Errorf("1%% density: compressed %d vs dense %d — poor compression", c.SizeBytes(), a.SizeBytes())
	}
	// Dense data compresses poorly (header overhead per run).
	dense := sparseDense([]int{20, 20}, 0.95, 5)
	cd := CompressDense(dense)
	if cd.SizeBytes() < int64(float64(cd.Cells())*8) {
		t.Errorf("compressed size below value storage: %d", cd.SizeBytes())
	}
}

func TestNewCompressedDirect(t *testing.T) {
	c, err := NewCompressed([]int{3, 3}, []int{1, 4, 8}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := c.Get([]int{0, 1})
	if !ok || v != 10 {
		t.Errorf("cell (0,1) = %v, %v", v, ok)
	}
	v, ok, _ = c.Get([]int{2, 2})
	if !ok || v != 30 {
		t.Errorf("cell (2,2) = %v, %v", v, ok)
	}
	if _, ok, _ := c.Get([]int{0, 0}); ok {
		t.Error("absent cell present")
	}
	// Errors.
	if _, err := NewCompressed([]int{3}, []int{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-ascending positions should fail")
	}
	if _, err := NewCompressed([]int{3}, []int{5}, []float64{1}); err == nil {
		t.Error("position beyond size should fail")
	}
	if _, err := NewCompressed([]int{3}, []int{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestCompressedForEachPresent(t *testing.T) {
	a := sparseDense([]int{5, 5}, 0.3, 6)
	c := CompressDense(a)
	n := 0
	var sum float64
	c.ForEachPresent(func(coords []int, v float64) bool {
		n++
		sum += v
		return true
	})
	if n != c.Cells() || math.Abs(sum-c.SumAll()) > 1e-9 {
		t.Errorf("visited %d cells, sum %v", n, sum)
	}
	// Early stop.
	n = 0
	c.ForEachPresent(func([]int, float64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: compression is lossless for any density.
func TestQuickCompressionLossless(t *testing.T) {
	f := func(seed int64, rawDensity uint8) bool {
		density := float64(rawDensity) / 255
		a := sparseDense([]int{8, 8}, density, seed)
		c := CompressDense(a)
		coords := make([]int, 2)
		for pos := 0; pos < a.Len(); pos++ {
			Delinearize(pos, []int{8, 8}, coords)
			wantV, wantOK, _ := a.Get(coords)
			gotV, gotOK, _ := c.Get(coords)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressedGetBinarySearch(b *testing.B) {
	a := sparseDense([]int{100, 100, 10}, 0.05, 1)
	c := CompressDense(a)
	coords := make([]int, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Delinearize(i%a.Len(), a.Shape(), coords)
		_, _, _ = c.Get(coords)
	}
}

func BenchmarkCompressedGetBTree(b *testing.B) {
	a := sparseDense([]int{100, 100, 10}, 0.05, 1)
	c := CompressDense(a)
	coords := make([]int, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Delinearize(i%a.Len(), a.Shape(), coords)
		_, _, _ = c.GetViaBTree(coords)
	}
}

func TestLZWRoundTrip(t *testing.T) {
	a := sparseDense([]int{20, 20}, 0.15, 7)
	c, err := CompressLZW(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells() != a.Cells() {
		t.Errorf("Cells = %d, want %d", c.Cells(), a.Cells())
	}
	back, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]int, 2)
	for pos := 0; pos < a.Len(); pos++ {
		Delinearize(pos, a.Shape(), coords)
		wv, wok, _ := a.Get(coords)
		gv, gok, _ := back.Get(coords)
		if wok != gok || (wok && wv != gv) {
			t.Fatalf("cell %v: (%v,%v) vs (%v,%v)", coords, gv, gok, wv, wok)
		}
	}
}

func TestLZWCompressesSparseData(t *testing.T) {
	a := sparseDense([]int{50, 50, 10}, 0.01, 8)
	c, err := CompressLZW(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeBytes() >= a.SizeBytes() {
		t.Errorf("LZW %d not smaller than dense %d", c.SizeBytes(), a.SizeBytes())
	}
}

func TestLZWFractionalValues(t *testing.T) {
	a := MustNewDense([]int{4})
	_ = a.Set([]int{1}, 3.14159)
	_ = a.Set([]int{3}, -2.5)
	c, err := CompressLZW(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := back.Get([]int{1})
	if !ok || v != 3.14159 {
		t.Errorf("cell 1 = %v, %v", v, ok)
	}
	v, ok, _ = back.Get([]int{3})
	if !ok || v != -2.5 {
		t.Errorf("cell 3 = %v, %v", v, ok)
	}
}
