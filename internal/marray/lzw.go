package marray

import (
	"bytes"
	"compress/lzw"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file provides the LZW alternative Section 6.2 mentions ("other
// compression methods can be used as well, such as the well known LZW
// method; the most effective method depends on the distribution of
// nulls"). Unlike header compression, an LZW-compressed array is a black
// box: no forward or inverse mapping is possible without decompressing, so
// it trades away exactly the direct-access property [EOA81] engineered
// for. The E5 experiment reports both sizes side by side.

// LZWCompressed is a dense array compressed wholesale with LZW.
type LZWCompressed struct {
	shape []int
	blob  []byte
	cells int
}

// CompressLZW serializes the dense array (presence bitmap + values) and
// LZW-compresses it.
func CompressLZW(a *Dense) (*LZWCompressed, error) {
	var raw bytes.Buffer
	mask := a.PresenceMask()
	for _, m := range mask {
		if m {
			raw.WriteByte(1)
		} else {
			raw.WriteByte(0)
		}
	}
	for pos := 0; pos < a.Len(); pos++ {
		v, ok := a.GetLinear(pos)
		if !ok {
			continue
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		raw.Write(buf[:])
	}
	var out bytes.Buffer
	w := lzw.NewWriter(&out, lzw.LSB, 8)
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, fmt.Errorf("marray: lzw compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("marray: lzw close: %w", err)
	}
	return &LZWCompressed{
		shape: append([]int(nil), a.Shape()...),
		blob:  out.Bytes(),
		cells: a.Cells(),
	}, nil
}

// SizeBytes returns the compressed footprint.
func (c *LZWCompressed) SizeBytes() int64 { return int64(len(c.blob)) }

// Cells returns the number of present cells the blob encodes.
func (c *LZWCompressed) Cells() int { return c.cells }

// Decompress reconstructs the dense array — the only access path LZW
// offers; there is no per-cell mapping.
func (c *LZWCompressed) Decompress() (*Dense, error) {
	r := lzw.NewReader(bytes.NewReader(c.blob), lzw.LSB, 8)
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("marray: lzw decompress: %w", err)
	}
	n := Size(c.shape)
	if len(raw) < n {
		return nil, fmt.Errorf("marray: lzw blob truncated: %d bytes for %d cells", len(raw), n)
	}
	a, err := NewDense(c.shape)
	if err != nil {
		return nil, err
	}
	coords := make([]int, len(c.shape))
	off := n
	for pos := 0; pos < n; pos++ {
		if raw[pos] == 0 {
			continue
		}
		if off+8 > len(raw) {
			return nil, fmt.Errorf("marray: lzw blob truncated at value %d", pos)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[off : off+8]))
		off += 8
		Delinearize(pos, c.shape, coords)
		if err := a.Set(coords, v); err != nil {
			return nil, err
		}
	}
	return a, nil
}
