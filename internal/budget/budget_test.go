package budget

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReserveRelease(t *testing.T) {
	g := NewGovernor(Limits{MaxBytes: 100})
	if err := g.Reserve(60); err != nil {
		t.Fatalf("Reserve(60): %v", err)
	}
	if err := g.Reserve(50); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Reserve(50) over budget: got %v, want ErrBudgetExceeded", err)
	}
	if got := g.BytesReserved(); got != 60 {
		t.Fatalf("failed reservation changed ledger: %d bytes reserved, want 60", got)
	}
	g.Release(20)
	if err := g.Reserve(50); err != nil {
		t.Fatalf("Reserve(50) after release: %v", err)
	}
	if got := g.BytesReserved(); got != 90 {
		t.Fatalf("BytesReserved = %d, want 90", got)
	}
	g.Release(1000) // over-release clamps at zero
	if got := g.BytesReserved(); got != 0 {
		t.Fatalf("over-release left %d bytes, want 0", got)
	}
}

func TestUnlimitedAndNil(t *testing.T) {
	g := NewGovernor(Limits{})
	if err := g.Reserve(1 << 50); err != nil {
		t.Fatalf("unlimited governor refused: %v", err)
	}
	var nilG *Governor
	if err := nilG.Reserve(1 << 50); err != nil {
		t.Fatalf("nil governor refused: %v", err)
	}
	nilG.Release(10)
	if err := nilG.AddCells(1 << 50); err != nil {
		t.Fatalf("nil governor refused cells: %v", err)
	}
	if nilG.BytesReserved() != 0 || nilG.CellsUsed() != 0 {
		t.Fatal("nil governor reported nonzero usage")
	}
}

func TestAddCellsQuota(t *testing.T) {
	g := NewGovernor(Limits{MaxCells: 10})
	if err := g.AddCells(7); err != nil {
		t.Fatalf("AddCells(7): %v", err)
	}
	if err := g.AddCells(3); err != nil {
		t.Fatalf("AddCells(3) at quota: %v", err)
	}
	if err := g.AddCells(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("AddCells past quota: got %v, want ErrBudgetExceeded", err)
	}
}

func TestCheckTaxonomy(t *testing.T) {
	if err := Check(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := Check(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context: %v not Is ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v not Is context.Canceled", err)
	}
	if !IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	derr := Check(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline context: %v must Is ErrCanceled and DeadlineExceeded", derr)
	}
	if errors.Is(derr, ErrBudgetExceeded) {
		t.Fatalf("cancellation error must not match ErrBudgetExceeded: %v", derr)
	}
}

func TestCheckCause(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("shed load"))
	err := Check(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("caused cancellation: %v", err)
	}
	if want := "shed load"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention cause %q", err, want)
	}
}

func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(Limits{MaxBytes: 1000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Reserve(5); err == nil {
					g.Release(5)
				}
			}
		}()
	}
	wg.Wait()
	if got := g.BytesReserved(); got != 0 {
		t.Fatalf("ledger drifted under concurrency: %d, want 0", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	g := NewGovernor(Limits{MaxBytes: 1})
	ctx := WithGovernor(context.Background(), g)
	if From(ctx) != g {
		t.Fatal("From did not return the attached governor")
	}
	if From(context.Background()) != nil {
		t.Fatal("From on a bare context must return nil")
	}
	if From(nil) != nil {
		t.Fatal("From(nil) must return nil")
	}
	if got := WithGovernor(ctx, nil); got != ctx {
		t.Fatal("attaching a nil governor must return ctx unchanged")
	}
}

func TestTicker(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tick := NewTicker(ctx, 10)
	if err := tick.Tick(); err != nil {
		t.Fatalf("first tick on live ctx: %v", err)
	}
	cancel()
	// Ticks within the amortization window pass; the next poll fails.
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = tick.Tick()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("ticker never surfaced cancellation within one window: %v", err)
	}
	nilTick := NewTicker(nil, 0)
	for i := 0; i < 3; i++ {
		if err := nilTick.Tick(); err != nil {
			t.Fatalf("nil-ctx ticker: %v", err)
		}
	}
}
