// Package budget is the engine's resource governor: per-query memory and
// cell quotas, and the typed cancellation taxonomy every execution layer
// returns instead of partial garbage.
//
// The paper's closing argument is that the Statistical Object must be a
// first-class database citizen; at production scale that means every query
// and cube build is cancellable, deadline-bounded and memory-budgeted —
// [ZDN97]'s observation that array-based cube construction is memory-bound
// makes unbudgeted MOLAP builds the engine's biggest OOM risk.
//
// The package has two halves:
//
//   - Governor: an atomic reservation ledger with byte and cell quotas.
//     Builders Reserve an estimate before allocating (cells × cell width
//     for MOLAP arrays, map-entry accounting for ROLAP partials) and
//     Release when the result is handed off. A reservation that would
//     exceed the quota fails with ErrBudgetExceeded, letting the caller
//     degrade (a MOLAP build falls back to smallest-parent ROLAP) or
//     abort cleanly.
//   - Cancellation: Check converts a done context into an error that is
//     both errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()), so
//     callers match the engine taxonomy or the stdlib sentinels as they
//     prefer. Ticker amortizes the check over tight scan loops so hot
//     paths pay one context poll per segment, not per cell — bounding
//     cancellation latency by segment size.
//
// A Governor travels in the context (WithGovernor / From), so the whole
// execution stack — query evaluation, cube builders, storage scans —
// shares one ledger per query. A nil Governor means "unlimited": every
// method is nil-safe, and un-governed call paths cost a pointer test.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"statcube/internal/obs"
)

// Typed error taxonomy. Every budgeted or cancellable entry point returns
// an error matching exactly one of these instead of partial results.
var (
	// ErrBudgetExceeded marks a reservation that would exceed the
	// governor's byte or cell quota.
	ErrBudgetExceeded = errors.New("budget: resource budget exceeded")
	// ErrCanceled marks work abandoned because its context was canceled
	// or its deadline passed. Errors carrying it also unwrap to the
	// underlying context error (context.Canceled or
	// context.DeadlineExceeded) and to context.Cause when one was set.
	ErrCanceled = errors.New("budget: canceled")
)

// Governance metrics, mirrored into the process-wide registry:
//
//	budget.bytes_reserved     (gauge) bytes currently reserved across all governors
//	budget.reservations       successful Reserve calls
//	budget.denials            reservations refused by a quota
//	engine.queries_canceled   queries/builds abandoned on a canceled context
var (
	bytesReservedGauge = obs.Default().Gauge("budget.bytes_reserved")
	reservations       = obs.Default().Counter("budget.reservations")
	denials            = obs.Default().Counter("budget.denials")
	queriesCanceled    = obs.Default().Counter("engine.queries_canceled")
)

// RecordCanceled charges one abandoned query/build to
// engine.queries_canceled. Entry points (query.Run*, the cube builders)
// call it once per canceled operation — Check deliberately does not, since
// a single cancellation is observed by many polls on the way out.
func RecordCanceled() {
	if obs.On() {
		queriesCanceled.Inc()
	}
}

// globalReserved tracks bytes reserved across every live governor, so the
// budget.bytes_reserved gauge shows engine-wide memory pressure.
var globalReserved atomic.Int64

// cancelErr adapts a context error into the taxonomy: it Is ErrCanceled
// and unwraps to the context's error (and cause).
type cancelErr struct{ cause error }

func (e *cancelErr) Error() string { return "budget: canceled: " + e.cause.Error() }

func (e *cancelErr) Is(target error) bool { return target == ErrCanceled }

func (e *cancelErr) Unwrap() error { return e.cause }

// Check returns nil while ctx is live, and a taxonomy error once it is
// done: errors.Is(err, ErrCanceled) holds, as does errors.Is against the
// context's own error. A nil context never cancels.
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil && !errors.Is(err, cause) {
			err = fmt.Errorf("%w (%v)", err, cause)
		}
		return &cancelErr{cause: err}
	}
	return nil
}

// IsCanceled reports whether err belongs to the cancellation branch of the
// taxonomy.
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// Limits bound one governor. Zero means unlimited for either quota.
type Limits struct {
	// MaxBytes caps concurrently reserved working memory.
	MaxBytes int64
	// MaxCells caps the total cells (rows, groups, array entries) a
	// query may produce.
	MaxCells int64
}

// Governor is an atomic reservation ledger enforcing Limits. All methods
// are safe for concurrent use and nil-safe — a nil *Governor admits
// everything, so un-governed paths need no branching.
type Governor struct {
	limits Limits
	bytes  atomic.Int64
	peak   atomic.Int64 // high-water mark of bytes, CAS-maintained
	cells  atomic.Int64
}

// NewGovernor returns a governor enforcing the given limits.
func NewGovernor(l Limits) *Governor { return &Governor{limits: l} }

// Reserve claims n bytes of working memory, failing with ErrBudgetExceeded
// (and no ledger change) if the claim would exceed MaxBytes. Non-positive
// n is a no-op.
func (g *Governor) Reserve(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	now := g.bytes.Add(n)
	if g.limits.MaxBytes > 0 && now > g.limits.MaxBytes {
		g.bytes.Add(-n)
		if obs.On() {
			denials.Inc()
		}
		return fmt.Errorf("%w: %d bytes requested, %d of %d reserved",
			ErrBudgetExceeded, n, now-n, g.limits.MaxBytes)
	}
	for {
		old := g.peak.Load()
		if old >= now || g.peak.CompareAndSwap(old, now) {
			break
		}
	}
	if obs.On() {
		reservations.Inc()
		bytesReservedGauge.Set(float64(globalReserved.Add(n)))
	}
	return nil
}

// Release returns n reserved bytes to the budget. Releasing more than was
// reserved clamps the ledger at zero rather than going negative.
func (g *Governor) Release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	for {
		cur := g.bytes.Load()
		rel := n
		if rel > cur {
			rel = cur
		}
		if g.bytes.CompareAndSwap(cur, cur-rel) {
			if obs.On() && rel > 0 {
				bytesReservedGauge.Set(float64(globalReserved.Add(-rel)))
			}
			return
		}
	}
}

// AddCells charges n produced cells against the cell quota, failing with
// ErrBudgetExceeded once the cumulative total passes MaxCells. Unlike
// bytes, cells are never released — the quota bounds total output, not
// concurrent footprint.
func (g *Governor) AddCells(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	now := g.cells.Add(n)
	if g.limits.MaxCells > 0 && now > g.limits.MaxCells {
		if obs.On() {
			denials.Inc()
		}
		return fmt.Errorf("%w: %d cells produced, quota %d", ErrBudgetExceeded, now, g.limits.MaxCells)
	}
	return nil
}

// BytesReserved returns the governor's currently reserved bytes.
func (g *Governor) BytesReserved() int64 {
	if g == nil {
		return 0
	}
	return g.bytes.Load()
}

// PeakBytes returns the ledger's high-water mark: the largest number of
// bytes concurrently reserved over the governor's lifetime. Unlike
// BytesReserved it never decreases, making it the per-query memory cost
// the flight recorder and EXPLAIN ANALYZE report after the work is done
// (and the ledger has drained).
func (g *Governor) PeakBytes() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// CellsUsed returns the cells charged so far.
func (g *Governor) CellsUsed() int64 {
	if g == nil {
		return 0
	}
	return g.cells.Load()
}

// Limits returns the governor's limits (zero Limits for nil).
func (g *Governor) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.limits
}

type ctxKey struct{}

// WithGovernor attaches g to the context; every budgeted entry point below
// recovers it with From. Attaching nil returns ctx unchanged.
func WithGovernor(ctx context.Context, g *Governor) context.Context {
	if g == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, g)
}

// From returns the context's governor, or nil (= unlimited) when none is
// attached. A nil context is accepted.
func From(ctx context.Context) *Governor {
	if ctx == nil {
		return nil
	}
	g, _ := ctx.Value(ctxKey{}).(*Governor)
	return g
}

// DefaultTickEvery is how many Tick calls a Ticker amortizes one context
// poll over. Scans check between segments of this many items, so
// cancellation latency is bounded by segment size while the hot loop pays
// an integer increment per item.
const DefaultTickEvery = 4096

// Ticker amortizes context checks over tight loops: Tick returns a
// taxonomy error only on the polls it actually performs (every `every`
// calls, and on the first). Not safe for concurrent use — each worker
// keeps its own.
type Ticker struct {
	//lint:ignore ctxfirst Ticker is a loop-local poll amortizer created and dropped inside one call frame; storing ctx is its whole point
	ctx   context.Context
	every int
	n     int
}

// NewTicker returns a ticker polling ctx every `every` Ticks (values < 1
// use DefaultTickEvery).
func NewTicker(ctx context.Context, every int) *Ticker {
	if every < 1 {
		every = DefaultTickEvery
	}
	return &Ticker{ctx: ctx, every: every}
}

// Tick counts one unit of work and polls the context when the amortization
// window rolls over.
func (t *Ticker) Tick() error {
	if t.ctx == nil {
		return nil
	}
	if t.n%t.every == 0 {
		if err := Check(t.ctx); err != nil {
			return err
		}
	}
	t.n++
	return nil
}
