package budget

import (
	"sync"
	"testing"
)

func TestPeakBytesHighWaterMark(t *testing.T) {
	g := NewGovernor(Limits{MaxBytes: 1000})
	if g.PeakBytes() != 0 {
		t.Fatalf("fresh governor peak = %d", g.PeakBytes())
	}
	mustReserve := func(n int64) {
		t.Helper()
		if err := g.Reserve(n); err != nil {
			t.Fatal(err)
		}
	}
	mustReserve(300)
	mustReserve(200)
	if g.PeakBytes() != 500 {
		t.Errorf("peak after 300+200 = %d, want 500", g.PeakBytes())
	}
	g.Release(400)
	mustReserve(100)
	// Draining and re-reserving below the mark must not move it.
	if g.PeakBytes() != 500 {
		t.Errorf("peak after release+100 = %d, want 500", g.PeakBytes())
	}
	mustReserve(600) // 200 + 600 = 800: a new high-water mark
	if g.PeakBytes() != 800 {
		t.Errorf("peak = %d, want 800", g.PeakBytes())
	}
	// A refused reservation leaves the mark untouched.
	if err := g.Reserve(500); err == nil {
		t.Fatal("expected budget refusal")
	}
	if g.PeakBytes() != 800 {
		t.Errorf("peak after refusal = %d, want 800", g.PeakBytes())
	}
	var nilGov *Governor
	if nilGov.PeakBytes() != 0 {
		t.Error("nil governor peak should be 0")
	}
}

func TestPeakBytesConcurrent(t *testing.T) {
	g := NewGovernor(Limits{})
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := g.Reserve(10); err != nil {
					t.Error(err)
					return
				}
				g.Release(10)
			}
		}()
	}
	wg.Wait()
	// The mark saw at least one reservation and never more than the
	// theoretical maximum of all workers holding at once.
	if p := g.PeakBytes(); p < 10 || p > workers*10 {
		t.Errorf("concurrent peak = %d, want within [10, %d]", p, workers*10)
	}
	if g.BytesReserved() != 0 {
		t.Errorf("ledger did not drain: %d", g.BytesReserved())
	}
}
