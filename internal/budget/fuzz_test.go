package budget

import (
	"errors"
	"testing"
)

// FuzzGovernorReserve drives a governor with an arbitrary op sequence and
// asserts the ledger invariants: reserved bytes never exceed MaxBytes,
// never go negative, a denied reservation leaves the ledger untouched, and
// the ledger always equals the sum of admitted reservations minus releases
// (clamped at zero).
//
// Each op byte encodes one call: the low two bits pick the operation
// (reserve / release / add-cells / check usage), the high six bits the
// amount.
func FuzzGovernorReserve(f *testing.F) {
	f.Add(int64(100), int64(50), []byte{0x10, 0x11, 0x20, 0x05})
	f.Add(int64(0), int64(0), []byte{0xff, 0x00, 0x81})
	f.Add(int64(1), int64(1), []byte{0x04, 0x04, 0x04})
	f.Add(int64(-5), int64(-5), []byte{0x40, 0x41, 0x42, 0x43})
	f.Fuzz(func(t *testing.T, maxBytes, maxCells int64, ops []byte) {
		if maxBytes < 0 {
			maxBytes = -maxBytes
		}
		if maxCells < 0 {
			maxCells = -maxCells
		}
		g := NewGovernor(Limits{MaxBytes: maxBytes, MaxCells: maxCells})
		var ledger int64 // shadow of admitted reservations
		for _, op := range ops {
			amt := int64(op >> 2)
			switch op & 3 {
			case 0: // reserve
				before := g.BytesReserved()
				err := g.Reserve(amt)
				if err != nil {
					if !errors.Is(err, ErrBudgetExceeded) {
						t.Fatalf("Reserve returned non-taxonomy error %v", err)
					}
					if got := g.BytesReserved(); got != before {
						t.Fatalf("denied Reserve moved ledger %d -> %d", before, got)
					}
				} else {
					ledger += amt
				}
			case 1: // release
				g.Release(amt)
				ledger -= amt
				if ledger < 0 {
					ledger = 0
				}
			case 2: // add cells
				if err := g.AddCells(amt); err != nil && !errors.Is(err, ErrBudgetExceeded) {
					t.Fatalf("AddCells returned non-taxonomy error %v", err)
				}
			case 3: // read back
				_ = g.CellsUsed()
			}
			got := g.BytesReserved()
			if got != ledger {
				t.Fatalf("ledger mismatch: governor %d, shadow %d", got, ledger)
			}
			if got < 0 {
				t.Fatalf("negative reservation ledger: %d", got)
			}
			if maxBytes > 0 && got > maxBytes {
				t.Fatalf("ledger %d exceeds MaxBytes %d", got, maxBytes)
			}
		}
	})
}
