package lint

import (
	"fmt"
	"sort"
)

// Suggested fixes: a diagnostic may carry one machine-applicable Fix — a
// set of byte-offset textual edits (`statlint -fix` applies them in
// place). Fixes are deliberately textual, not AST-rewriting: the analyzer
// computed exact positions from the parsed file, and splicing bytes
// preserves every comment and formatting choice around the edit. The
// golden round-trip harness (analyzers/testdata/fix) locks in that
// applying a corpus's fixes yields compiling code with zero remaining
// findings.

// TextEdit replaces the half-open byte range [Start, End) of File with
// New. Start == End is a pure insertion.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// Fix is one suggested edit set, applied atomically.
type Fix struct {
	// Message describes the rewrite ("insert defer sp.End()",
	// "rewrite with errors.Is").
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes applies every fix carried by diags to the sources map
// (filename → content) and returns the rewritten files. Identical edits
// (same range and replacement — e.g. two fixes both adding the same
// import line) are deduplicated; a fix whose edits overlap an already
// accepted edit is skipped whole, and the skipped count reports how many
// fixes were dropped that way. Sources are not mutated.
func ApplyFixes(diags []Diagnostic, sources map[string][]byte) (changed map[string][]byte, applied, skipped int) {
	type span struct{ start, end int }
	accepted := map[string][]TextEdit{}
	taken := map[string][]span{}
	seen := map[TextEdit]bool{}

	overlaps := func(file string, start, end int) bool {
		for _, s := range taken[file] {
			// Two insertions at the same point do conflict (order would
			// be ambiguous); identical edits were already deduplicated.
			if start < s.end && end > s.start || (start == s.start && end == s.end) {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		fresh := make([]TextEdit, 0, len(d.Fix.Edits))
		conflict := false
		for _, e := range d.Fix.Edits {
			if seen[e] {
				continue // identical edit already accepted
			}
			if overlaps(e.File, e.Start, e.End) {
				conflict = true
				break
			}
			fresh = append(fresh, e)
		}
		if conflict {
			skipped++
			continue
		}
		for _, e := range fresh {
			seen[e] = true
			accepted[e.File] = append(accepted[e.File], e)
			taken[e.File] = append(taken[e.File], span{e.Start, e.End})
		}
		applied++
	}

	changed = map[string][]byte{}
	for file, edits := range accepted {
		src, ok := sources[file]
		if !ok {
			continue
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		out := append([]byte(nil), src...)
		for _, e := range edits {
			if e.Start < 0 || e.End > len(out) || e.Start > e.End {
				continue // stale offsets; leave the file alone rather than corrupt it
			}
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
		}
		changed[file] = out
	}
	return changed, applied, skipped
}

// FixCount returns how many of the diagnostics carry a suggested fix.
func FixCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}

// String renders an edit for logs.
func (e TextEdit) String() string {
	return fmt.Sprintf("%s[%d:%d)=%q", e.File, e.Start, e.End, e.New)
}
