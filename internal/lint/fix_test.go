package lint

import (
	"bytes"
	"go/token"
	"testing"
)

func diagWithFix(file string, edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Analyzer: "testfix",
		Position: token.Position{Filename: file, Line: 1, Column: 1},
		Message:  "test finding",
		Fix:      &Fix{Message: "test fix", Edits: edits},
	}
}

func TestApplyFixesReplaceAndInsert(t *testing.T) {
	src := map[string][]byte{"a.go": []byte("abcdef")}
	diags := []Diagnostic{
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 2, End: 4, New: "XY"}),
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 6, End: 6, New: "!"}),
	}
	changed, applied, skipped := ApplyFixes(diags, src)
	if applied != 2 || skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 2/0", applied, skipped)
	}
	if got := string(changed["a.go"]); got != "abXYef!" {
		t.Fatalf("got %q, want %q", got, "abXYef!")
	}
	if string(src["a.go"]) != "abcdef" {
		t.Fatalf("sources mutated: %q", src["a.go"])
	}
}

func TestApplyFixesDeduplicatesIdenticalEdits(t *testing.T) {
	// Two fixes both inserting the same import line: the edit applies
	// once, both fixes count as applied.
	src := map[string][]byte{"a.go": []byte("head body")}
	imp := TextEdit{File: "a.go", Start: 0, End: 0, New: "import\n"}
	diags := []Diagnostic{
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 5, End: 9, New: "one"}, imp),
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 4, End: 5, New: "-"}, imp),
	}
	changed, applied, skipped := ApplyFixes(diags, src)
	if applied != 2 || skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 2/0", applied, skipped)
	}
	if got := string(changed["a.go"]); got != "import\nhead-one" {
		t.Fatalf("got %q, want %q", got, "import\nhead-one")
	}
}

func TestApplyFixesSkipsOverlappingFixWhole(t *testing.T) {
	// The second fix's first edit overlaps an accepted range: the whole
	// fix (both edits) is dropped, not just the conflicting edit.
	src := map[string][]byte{"a.go": []byte("0123456789")}
	diags := []Diagnostic{
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 2, End: 6, New: "AA"}),
		diagWithFix("a.go",
			TextEdit{File: "a.go", Start: 4, End: 8, New: "BB"},
			TextEdit{File: "a.go", Start: 9, End: 10, New: "C"}),
	}
	changed, applied, skipped := ApplyFixes(diags, src)
	if applied != 1 || skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", applied, skipped)
	}
	if got := string(changed["a.go"]); got != "01AA6789" {
		t.Fatalf("got %q, want %q", got, "01AA6789")
	}
}

func TestApplyFixesSameAnchorInsertionsConflict(t *testing.T) {
	// Two different insertions at the same offset would apply in an
	// ambiguous order: the later fix is skipped.
	src := map[string][]byte{"a.go": []byte("xy")}
	diags := []Diagnostic{
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 1, End: 1, New: "A"}),
		diagWithFix("a.go", TextEdit{File: "a.go", Start: 1, End: 1, New: "B"}),
	}
	changed, applied, skipped := ApplyFixes(diags, src)
	if applied != 1 || skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", applied, skipped)
	}
	if got := string(changed["a.go"]); got != "xAy" {
		t.Fatalf("got %q, want %q", got, "xAy")
	}
}

func TestApplyFixesIgnoresFixlessAndUnknownFiles(t *testing.T) {
	src := map[string][]byte{"a.go": []byte("abc")}
	diags := []Diagnostic{
		{Analyzer: "plain", Position: token.Position{Filename: "a.go", Line: 1}, Message: "no fix"},
		diagWithFix("missing.go", TextEdit{File: "missing.go", Start: 0, End: 1, New: "Z"}),
	}
	changed, applied, skipped := ApplyFixes(diags, src)
	if applied != 1 || skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 1/0", applied, skipped)
	}
	if len(changed) != 0 {
		t.Fatalf("no loaded file should change, got %v", changed)
	}
	if FixCount(diags) != 1 {
		t.Fatalf("FixCount = %d, want 1", FixCount(diags))
	}
}

func TestApplyFixesDescendingApplication(t *testing.T) {
	// Multiple edits in one file must apply back to front so earlier
	// offsets stay valid.
	src := map[string][]byte{"a.go": []byte("aa bb cc")}
	diags := []Diagnostic{
		diagWithFix("a.go",
			TextEdit{File: "a.go", Start: 0, End: 2, New: "XXXX"},
			TextEdit{File: "a.go", Start: 3, End: 5, New: "Y"},
			TextEdit{File: "a.go", Start: 6, End: 8, New: "ZZZ"}),
	}
	changed, _, _ := ApplyFixes(diags, src)
	if got := string(changed["a.go"]); got != "XXXX Y ZZZ" {
		t.Fatalf("got %q, want %q", got, "XXXX Y ZZZ")
	}
}

func TestTextEditString(t *testing.T) {
	e := TextEdit{File: "a.go", Start: 1, End: 3, New: "x"}
	if got := e.String(); !bytes.Contains([]byte(got), []byte("a.go[1:3)")) {
		t.Fatalf("TextEdit.String() = %q", got)
	}
}
