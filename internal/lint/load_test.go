package lint

import (
	"strings"
	"testing"
)

// TestLoadSkipsTestdataAndTests locks in the walk rules the whole suite
// depends on: `<dir>/...` skips testdata (where the analyzer corpora
// seed deliberate violations) and _test.go files never load.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// "." plus the analyzers subtree keeps the walk cheap while still
	// crossing a testdata boundary (the corpora live under analyzers/).
	pkgs, err := loader.Load([]string{".", "./analyzers/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var found bool
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "/testdata/") {
			t.Errorf("recursive walk descended into testdata: %s", p.ImportPath)
		}
		if p.ImportPath == "statcube/internal/lint" {
			found = true
			for _, f := range p.Files {
				name := loader.Fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					t.Errorf("loaded a test file: %s", name)
				}
			}
			if len(p.TypeErrors) > 0 {
				t.Errorf("type errors in a building package: %v", p.TypeErrors)
			}
		}
	}
	if !found {
		t.Fatalf("statcube/internal/lint missing from ./... load (%d packages)", len(pkgs))
	}
}

// TestLoadExplicitTestdataDir locks in that the harness can point at a
// corpus directly: an explicit pattern root is always accepted even
// though recursive walks skip testdata.
func TestLoadExplicitTestdataDir(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{"./analyzers/testdata/src/nakedgoroutine/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (corpus root + nested exempt package)", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: corpus must type-check: %v", p.ImportPath, p.TypeErrors)
		}
	}
}
