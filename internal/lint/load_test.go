package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSkipsTestdataAndTests locks in the walk rules the whole suite
// depends on: `<dir>/...` skips testdata (where the analyzer corpora
// seed deliberate violations) and _test.go files never load.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// "." plus the analyzers subtree keeps the walk cheap while still
	// crossing a testdata boundary (the corpora live under analyzers/).
	pkgs, err := loader.Load([]string{".", "./analyzers/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var found bool
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "/testdata/") {
			t.Errorf("recursive walk descended into testdata: %s", p.ImportPath)
		}
		if p.ImportPath == "statcube/internal/lint" {
			found = true
			for _, f := range p.Files {
				name := loader.Fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					t.Errorf("loaded a test file: %s", name)
				}
			}
			if len(p.TypeErrors) > 0 {
				t.Errorf("type errors in a building package: %v", p.TypeErrors)
			}
		}
	}
	if !found {
		t.Fatalf("statcube/internal/lint missing from ./... load (%d packages)", len(pkgs))
	}
}

// TestLoadExplicitTestdataDir locks in that the harness can point at a
// corpus directly: an explicit pattern root is always accepted even
// though recursive walks skip testdata.
func TestLoadExplicitTestdataDir(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{"./analyzers/testdata/src/nakedgoroutine/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (corpus root + nested exempt package)", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: corpus must type-check: %v", p.ImportPath, p.TypeErrors)
		}
	}
}

// scratchModule lays out a throwaway module for loader error-path tests
// and returns its root.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return root
}

func TestNewLoaderNoModule(t *testing.T) {
	_, err := NewLoader(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("want no-go.mod error, got %v", err)
	}
}

func TestNewLoaderModFileWithoutModuleLine(t *testing.T) {
	root := scratchModule(t, map[string]string{"go.mod": "go 1.22\n"})
	_, err := NewLoader(root)
	if err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("want no-module-line error, got %v", err)
	}
}

func TestLoadPatternErrors(t *testing.T) {
	root := scratchModule(t, map[string]string{
		"go.mod":  "module scratch\n\ngo 1.22\n",
		"file.go": "package scratch\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load([]string{filepath.Join(root, "missing")}); err == nil {
		t.Error("want error for a pattern naming a missing directory")
	}
	if _, err := loader.Load([]string{filepath.Join(root, "file.go")}); err == nil ||
		!strings.Contains(err.Error(), "not a directory") {
		t.Errorf("want not-a-directory error for a file pattern, got %v", err)
	}
}

func TestLoadParseErrorSurfaces(t *testing.T) {
	root := scratchModule(t, map[string]string{
		"go.mod":  "module scratch\n\ngo 1.22\n",
		"bad.go":  "package scratch\nfunc {",
		"good.go": "package scratch\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = loader.Load([]string{root})
	if err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("want parse error, got %v", err)
	}
}

func TestLoadTypeErrorCollectedNotFatal(t *testing.T) {
	root := scratchModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go":   "package scratch\n\nfunc f() int { return \"not an int\" }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{root})
	if err != nil {
		t.Fatalf("Load must not fail on soft type errors: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].TypeErrors) == 0 {
		t.Fatalf("type errors must be collected on the package; got %+v", pkgs)
	}
	if pkgs[0].Info == nil || pkgs[0].Types == nil {
		t.Fatal("Info/Types must stay usable for whatever did check")
	}
}

func TestLoadGoFreeDirsYieldNoPackage(t *testing.T) {
	// Dirs holding no non-test Go files (module root with just go.mod,
	// docs, test-only dirs) walk clean without producing packages.
	root := scratchModule(t, map[string]string{
		"go.mod":         "module scratch\n\ngo 1.22\n",
		"docs/README.md": "not go\n",
		"only/x_test.go": "package only\n",
		"real/real.go":   "package real\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load([]string{root + "/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "scratch/real" {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.ImportPath)
		}
		t.Fatalf("want only scratch/real, got %v", paths)
	}
}
