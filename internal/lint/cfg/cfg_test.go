package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses a function body and builds its graph.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(file.Decls[0].(*ast.FuncDecl))
}

// edgesInto counts edges arriving at b.
func edgesInto(g *Graph, b *Block) int {
	n := 0
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == b {
				n++
			}
		}
	}
	return n
}

// condEdges returns b's condition-labeled successors as a val→target map.
func condEdges(t *testing.T, g *Graph, cond string) map[bool]*Block {
	t.Helper()
	out := map[bool]*Block{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond != nil {
				out[e.CondVal] = e.To
			}
		}
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, "x := 1\ny := x\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3\n%s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0].To != g.Exit {
		t.Fatalf("entry should edge straight to exit\n%s", g)
	}
	if len(g.Exit.Nodes) != 0 {
		t.Fatalf("exit must hold no nodes")
	}
}

func TestIfElseCondEdges(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	edges := condEdges(t, g, "x > 0")
	if edges[true] == nil || edges[false] == nil {
		t.Fatalf("missing labeled branch edges\n%s", g)
	}
	if edges[true] == edges[false] {
		t.Fatalf("true and false branches must differ\n%s", g)
	}
	// Both branches rejoin: the join block has two incoming edges.
	var join *Block
	for _, blk := range g.Blocks {
		if len(blk.Nodes) == 1 && edgesInto(g, blk) == 2 {
			join = blk
		}
	}
	if join == nil {
		t.Fatalf("no join block with 2 predecessors\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	edges := condEdges(t, g, "x > 0")
	if edges[false] == nil {
		t.Fatalf("if without else still needs a false edge to the join\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := buildFunc(t, "for i := 0; i < 3; i++ {\n_ = i\n}")
	// The head block (holding the condition) must be reachable from both
	// the entry side and the post block — a back edge.
	var head *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.BinaryExpr); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatalf("no block holds the loop condition\n%s", g)
	}
	if edgesInto(g, head) < 2 {
		t.Fatalf("loop head needs entry + back edge, got %d\n%s", edgesInto(g, head), g)
	}
	edges := condEdges(t, g, "i < 3")
	if edges[true] == nil || edges[false] == nil {
		t.Fatalf("loop condition edges missing\n%s", g)
	}
}

func TestInfiniteForNoExitFromHead(t *testing.T) {
	g := buildFunc(t, "for {\nbreak\n}\nreturn")
	// `for {}` has no condition edge out; only the break reaches after.
	if edgesInto(g, g.Exit) == 0 {
		t.Fatalf("break should let control reach exit\n%s", g)
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	n := edgesInto(g, g.Exit)
	if n != 2 { // early return + fall-off-the-end
		t.Fatalf("exit in-edges = %d, want 2\n%s", n, g)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := buildFunc(t, "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x")
	// The panic block's only successor is exit.
	var panicBlock *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlock = blk
					}
				}
			}
		}
	}
	if panicBlock == nil {
		t.Fatalf("panic node not placed\n%s", g)
	}
	if len(panicBlock.Succs) != 1 || panicBlock.Succs[0].To != g.Exit {
		t.Fatalf("panic must edge only to exit\n%s", g)
	}
}

func TestOSExitTerminates(t *testing.T) {
	g := buildFunc(t, "os.Exit(1)\nx := 1\n_ = x")
	// Code after os.Exit lives in a block no edge reaches.
	for _, blk := range g.Blocks {
		if blk == g.Entry || blk == g.Exit {
			continue
		}
		if len(blk.Nodes) > 0 && edgesInto(g, blk) != 0 {
			t.Fatalf("post-Exit block should be unreachable\n%s", g)
		}
	}
}

func TestSwitchNoDefaultHasFallthroughEdge(t *testing.T) {
	g := buildFunc(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\n}\n_ = x")
	// Header must edge to: case1, case2, and after (no default).
	var header *Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 3 {
			header = blk
		}
	}
	if header == nil {
		t.Fatalf("switch header should have 3 successors (2 cases + no-match)\n%s", g)
	}
}

func TestSwitchFallthroughChainsCases(t *testing.T) {
	g := buildFunc(t, "x := 1\nswitch x {\ncase 1:\nx = 2\nfallthrough\ncase 2:\nx = 3\ndefault:\nx = 4\n}\n_ = x")
	s := g.String()
	if !strings.Contains(s, "AssignStmt") {
		t.Fatalf("cases should hold assignments\n%s", s)
	}
	// Find the case-1 block (holds the case expr + assignment) and check
	// it edges to another node-bearing block, not straight to the join.
	var case1 *Block
	for _, blk := range g.Blocks {
		if len(blk.Nodes) == 2 {
			if _, ok := blk.Nodes[0].(*ast.BasicLit); ok {
				case1 = blk
				break
			}
		}
	}
	if case1 == nil {
		t.Fatalf("case 1 block not found\n%s", s)
	}
	if len(case1.Succs) != 1 || len(case1.Succs[0].To.Nodes) == 0 {
		t.Fatalf("fallthrough must chain into the next case body\n%s", s)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}\nreturn")
	if edgesInto(g, g.Exit) == 0 {
		t.Fatalf("break outer should reach the return\n%s", g)
	}
}

func TestLabeledContinue(t *testing.T) {
	g := buildFunc(t, "outer:\nfor i := 0; i < 3; i++ {\nfor {\ncontinue outer\n}\n}")
	// The outer post block (i++) must have 2 in-edges: body fallthrough is
	// unreachable (inner for{} never exits) but continue outer lands there.
	var post *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.IncDecStmt); ok {
				post = blk
			}
		}
	}
	if post == nil {
		t.Fatalf("post block not found\n%s", g)
	}
	if edgesInto(g, post) == 0 {
		t.Fatalf("continue outer should land on the post block\n%s", g)
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := buildFunc(t, "x := 0\nloop:\nx++\nif x < 3 {\ngoto loop\n}\n_ = x")
	// The label block must have 2 in-edges: fallthrough + goto.
	var label *Block
	for _, blk := range g.Blocks {
		if edgesInto(g, blk) >= 2 && blk != g.Exit {
			label = blk
		}
	}
	if label == nil {
		t.Fatalf("goto target should have fallthrough + jump edges\n%s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, "xs := []int{1}\nfor _, x := range xs {\n_ = x\n}\nreturn")
	// Range head: two out-edges (body, after), body jumps back.
	var head *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatalf("range stmt not placed in a head block\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head should branch to body and after\n%s", g)
	}
	if edgesInto(g, head) < 2 {
		t.Fatalf("range head needs entry + back edge\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, "ch := make(chan int)\nselect {\ncase <-ch:\ncase v := <-ch:\n_ = v\n}\nreturn")
	if edgesInto(g, g.Exit) == 0 {
		t.Fatalf("select cases should rejoin and reach exit\n%s", g)
	}
}

func TestDeferIsOrdinaryNode(t *testing.T) {
	g := buildFunc(t, "defer println()\nreturn")
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer must appear as a plain node in its block\n%s", g)
	}
}

func TestFuncLitOpaque(t *testing.T) {
	g := buildFunc(t, "f := func() {\nreturn\n}\nf()")
	// The literal's return must NOT contribute an edge to the outer exit:
	// exactly one in-edge (the fall-off) is expected.
	if n := edgesInto(g, g.Exit); n != 1 {
		t.Fatalf("exit in-edges = %d, want 1 (FuncLit must be opaque)\n%s", n, g)
	}
}

func TestBuildNonFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Build on a non-function must panic")
		}
	}()
	Build(&ast.BadStmt{})
}

func TestBodylessFuncDecl(t *testing.T) {
	src := "package p\nfunc f()"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := Build(file.Decls[0].(*ast.FuncDecl))
	if len(g.Entry.Nodes) != 0 {
		t.Fatalf("bodyless decl should build an empty graph\n%s", g)
	}
}
