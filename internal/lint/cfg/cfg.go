// Package cfg builds per-function control-flow graphs from go/ast — the
// foundation statlint's path-sensitive analyzers (ledgerleak, spanend,
// closeleak, errdrop) run their dataflow over. Staying stdlib-only (the
// module's standing constraint) means no x/tools/go/cfg; this builder
// covers the statement forms the engine actually uses, with the
// simplifications documented per case and in DESIGN.md §6.
//
// Shape: a Graph is a set of Blocks, each an ordered list of ast.Nodes
// (statements, plus branch conditions as bare expressions) executed
// straight through, connected by Edges. An Edge may be labeled with the
// condition under which it is taken (Cond + CondVal), which is what lets
// an analysis refine facts across an `if err != nil` split — the whole
// point of building real CFGs instead of walking the AST.
//
// Modeling decisions:
//
//   - return edges go to Exit; a call that cannot return (panic,
//     os.Exit, log.Fatal*, runtime.Goexit) also edges to Exit, so
//     deferred cleanup — which runs on panic too — is modeled uniformly.
//   - defer statements are ordinary nodes: an analysis that cares about
//     deferred calls interprets them as path facts (a conditional defer
//     only covers paths that executed it), which is strictly more
//     precise than attaching defers to the exit block.
//   - switch/select case edges carry no condition (the engine's
//     refinement needs only the two-way if split); `fallthrough` chains
//     case bodies.
//   - goto targets a label's block; break/continue honor labels.
//   - function literals are opaque: the builder does not descend into
//     them (each FuncLit gets its own graph via Build).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is one function body's control-flow graph.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single synthetic exit: every return, panic and
	// fall-off-the-end path edges here. It holds no nodes.
	Exit *Block
	// Blocks lists every block (Entry and Exit included) in creation
	// order, so iteration is deterministic.
	Blocks []*Block
}

// Block is a straight-line run of nodes with no internal branching.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds statements, plus branch conditions as bare ast.Exprs,
	// in execution order.
	Nodes []ast.Node
	// Succs are the outgoing edges in a deterministic order (true branch
	// before false, case clauses in source order).
	Succs []Edge
}

// Edge connects a block to a successor, optionally labeled with the
// branch condition that selects it.
type Edge struct {
	To *Block
	// Cond, when non-nil, is the controlling condition: the edge is taken
	// exactly when Cond evaluates to CondVal. Nil means the edge carries
	// no refinable condition (unconditional jumps, range/case edges).
	Cond    ast.Expr
	CondVal bool
}

// Build constructs the graph of fn's body. fn must be a *ast.FuncDecl or
// *ast.FuncLit; a FuncDecl without a body (an external declaration)
// returns an empty two-block graph.
func Build(fn ast.Node) *Graph {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic(fmt.Sprintf("cfg.Build: not a function: %T", fn))
	}
	b := &builder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit) // falling off the end of the body
	return b.g
}

// labelInfo tracks one label: the block a goto (or the labeled statement
// itself) lands on. Labeled break/continue resolve through the scope
// stack instead, which records the label on the construct it prefixes.
type labelInfo struct {
	target *Block // created on first reference, forward gotos included
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	label   string // "" for unlabeled
	breakTo *Block
	contTo  *Block // nil for switch/select (continue passes through)
}

type builder struct {
	g      *Graph
	cur    *Block // nil while control is unreachable
	scopes []loopScope
	labels map[string]*labelInfo
	// labelNext carries a just-seen label into the loop/switch that
	// follows it, so `break L` / `continue L` resolve to that construct.
	labelNext string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock begins a fresh block and makes it current (for code after a
// terminator — unreachable until an edge lands on it).
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

// add appends a node to the current block, reviving an unreachable
// region into a fresh predecessor-less block (facts never flow there).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.startBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edge links from → to.
func (b *builder) edge(from, to *Block, cond ast.Expr, val bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, CondVal: val})
}

// jump ends the current block with an unconditional edge to target.
func (b *builder) jump(target *Block) {
	if b.cur == nil {
		return
	}
	b.edge(b.cur, target, nil, false)
	b.cur = nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		if condBlock == nil { // unreachable if; add() revived, keep going
			condBlock = b.startBlock()
		}
		after := b.newBlock()
		thenB := b.startBlock()
		b.edge(condBlock, thenB, s.Cond, true)
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			elseB := b.startBlock()
			b.edge(condBlock, elseB, s.Cond, false)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(condBlock, after, s.Cond, false)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		after := b.newBlock()
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		body := b.newBlock()
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(b.cur, body, s.Cond, true)
			b.edge(b.cur, after, s.Cond, false)
		} else {
			b.edge(b.cur, body, nil, false)
		}
		b.cur = body
		b.pushScope(s, after, contTo)
		b.stmt(s.Body)
		b.popScope()
		if post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		// The whole RangeStmt is the head's node: an analysis sees the
		// ranged expression and the per-iteration key/value assignment
		// once per pass over the head.
		b.add(s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(b.cur, body, nil, false)
		b.edge(b.cur, after, nil, false)
		b.cur = body
		b.pushScope(s, after, head)
		b.stmt(s.Body)
		b.popScope()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseBodies(s, s.Body.List, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseBodies(s, s.Body.List, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		header := b.cur
		if header == nil {
			header = b.startBlock()
		}
		after := b.newBlock()
		b.pushScope(s, after, nil)
		hasDefault := false
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			caseB := b.startBlock()
			b.edge(header, caseB, nil, false)
			if cc.Comm != nil {
				b.add(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.popScope()
		// A select with no cases (or none ready and no default) blocks
		// forever; model the header as still reaching after so facts are
		// not silently dropped on an empty select.
		if len(s.Body.List) == 0 && !hasDefault {
			b.edge(header, after, nil, false)
		}
		b.cur = after

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		// The label's block: goto lands here, and the labeled statement
		// itself runs from it.
		b.jump(li.target)
		b.cur = li.target
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.labelNext = s.Label.Name
			b.stmt(inner)
			b.labelNext = ""
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelFor(s.Label.Name).target)
		case token.FALLTHROUGH:
			// handled by caseBodies; reaching here (malformed code)
			// just ends the block
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminates(call) {
			b.jump(b.g.Exit)
		}

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty:
		// straight-line nodes.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// pushScope enters a breakable construct, consuming any pending label.
func (b *builder) pushScope(stmt ast.Stmt, breakTo, contTo *Block) {
	label := b.labelNext
	b.labelNext = ""
	b.scopes = append(b.scopes, loopScope{label: label, breakTo: breakTo, contTo: contTo})
}

func (b *builder) popScope() { b.scopes = b.scopes[:len(b.scopes)-1] }

// branchTarget resolves break/continue (optionally labeled) to a block.
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if isBreak {
			return sc.breakTo
		}
		if sc.contTo != nil {
			return sc.contTo
		}
		// continue inside a switch/select refers to the enclosing loop;
		// keep walking out.
	}
	return nil
}

// labelFor returns (creating on demand) the label's info.
func (b *builder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

// caseBodies builds the shared case-clause structure of switch and
// type-switch: every clause block hangs off the header, a missing
// default adds a header→after edge, fallthrough chains bodies.
func (b *builder) caseBodies(sw ast.Stmt, clauses []ast.Stmt, split func(*ast.CaseClause) (exprs []ast.Node, body []ast.Stmt, isDefault bool)) {
	header := b.cur
	if header == nil {
		header = b.startBlock()
	}
	after := b.newBlock()
	b.pushScope(sw, after, nil)
	hasDefault := false
	// First pass creates the clause blocks so fallthrough can target the
	// lexically next one.
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		exprs, body, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		b.edge(header, caseBlocks[i], nil, false)
		b.cur = caseBlocks[i]
		for _, e := range exprs {
			b.add(e)
		}
		fellThrough := false
		for j, st := range body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(body)-1 {
				if i+1 < len(caseBlocks) {
					b.jump(caseBlocks[i+1])
					fellThrough = true
				}
				break
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.jump(after)
		}
	}
	b.popScope()
	if !hasDefault {
		b.edge(header, after, nil, false)
	}
	b.cur = after
}

// terminates reports whether a call never returns: the panic builtin and
// the conventional process/goroutine terminators. Method calls are never
// terminators (a *T).Fatal would need type info the builder does not
// carry; the dataflow layer treats unknown calls as returning, which is
// the conservative direction for leak detection.
func terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// String renders the graph for debugging and the unit tests: one line
// per block with node kinds and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		switch blk {
		case g.Entry:
			sb.WriteString(" (entry)")
		case g.Exit:
			sb.WriteString(" (exit)")
		}
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %T", n)
		}
		sb.WriteString(" ->")
		for _, e := range blk.Succs {
			if e.Cond != nil {
				fmt.Fprintf(&sb, " b%d(%v)", e.To.Index, e.CondVal)
			} else {
				fmt.Fprintf(&sb, " b%d", e.To.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
