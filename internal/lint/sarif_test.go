package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	root := filepath.FromSlash("/work/statcube")
	analyzers := []*Analyzer{
		{Name: "zeta", Doc: "last rule"},
		{Name: "alpha", Doc: "first rule"},
	}
	diags := []Diagnostic{
		{
			Analyzer: "alpha",
			Position: token.Position{Filename: filepath.Join(root, "internal", "cube", "cube.go"), Line: 12, Column: 3},
			Message:  "something is off",
		},
		{
			Analyzer: "zeta",
			Position: token.Position{Filename: filepath.FromSlash("/elsewhere/out.go"), Line: 1, Column: 1},
			Message:  "outside the module",
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, analyzers, root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Fatalf("bad version/schema: %q %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "statlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "alpha" || run.Tool.Driver.Rules[1].ID != "zeta" {
		t.Fatalf("rules not sorted by ID: %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "alpha" || first.Level != "warning" {
		t.Fatalf("bad result: %+v", first)
	}
	if uri := first.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/cube/cube.go" {
		t.Fatalf("in-module URI must be module-relative with forward slashes, got %q", uri)
	}
	if line := first.Locations[0].PhysicalLocation.Region.StartLine; line != 12 {
		t.Fatalf("startLine = %d, want 12", line)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != filepath.FromSlash("/elsewhere/out.go") {
		t.Fatalf("out-of-module URI must pass through unchanged, got %q", uri)
	}
}
