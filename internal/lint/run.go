package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Result is one full lint run: the surviving diagnostics plus any type
// errors the loader hit (a non-empty TypeErrors means the findings may be
// incomplete and the run should exit 2, mirroring a build break).
type Result struct {
	Diagnostics []Diagnostic
	TypeErrors  []error
	// Suppressions counts the //lint:ignore directives seen, keyed by the
	// analyzer each names (a multi-analyzer directive counts once per
	// name). CI gates on these totals so the suppression inventory can
	// only shrink.
	Suppressions map[string]int
}

// Run loads the packages matched by patterns and applies every analyzer,
// returning position-sorted, suppression-filtered diagnostics.
// Analyzers run over packages in sorted import-path order, so analyzers
// holding cross-package state (metricname's uniqueness ledger) see a
// deterministic sequence.
func Run(loader *Loader, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Suppressions: map[string]int{}}
	var diags []Diagnostic
	var dirs []directive
	for _, pkg := range pkgs {
		res.TypeErrors = append(res.TypeErrors, pkg.TypeErrors...)
		d, bad := parseDirectives(loader.Fset, pkg.Files, loader.Sources)
		dirs = append(dirs, d...)
		diags = append(diags, bad...)
		for _, dir := range d {
			for _, name := range dir.analyzers {
				res.Suppressions[name]++
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       loader.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				Src:        loader.Sources,
				report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	diags = filterSuppressed(diags, dirs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res.Diagnostics = diags
	return res, nil
}

// WriteText prints diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints diagnostics as a JSON array of
// {analyzer, file, line, col, message} objects.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.File = d.Position.Filename
		d.Line = d.Position.Line
		d.Col = d.Position.Column
		out[i] = d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
