package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineDiag(root, rel, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Position: token.Position{Filename: filepath.Join(root, filepath.FromSlash(rel)), Line: 7, Column: 2},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := filepath.FromSlash("/work/statcube")
	diags := []Diagnostic{
		baselineDiag(root, "internal/serve/cache.go", "ledgerleak", "budget reservation is not released"),
		baselineDiag(root, "internal/serve/cache.go", "ledgerleak", "budget reservation is not released"),
		baselineDiag(root, "cmd/statd/main.go", "errdrop", "error assigned and never checked"),
	}

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags, root); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# statlint baseline") {
		t.Fatalf("missing header:\n%s", out)
	}

	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	bl, err := LoadBaseline(path, root)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if bl.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicate entries are a multiset)", bl.Size())
	}

	// All recorded findings filter out; line-number changes don't matter.
	shifted := make([]Diagnostic, len(diags))
	copy(shifted, diags)
	for i := range shifted {
		shifted[i].Position.Line += 100
	}
	fresh, matched := bl.Filter(shifted)
	if len(fresh) != 0 || len(matched) != 3 {
		t.Fatalf("fresh=%d matched=%d, want 0/3", len(fresh), len(matched))
	}
}

func TestBaselineMultisetConsumption(t *testing.T) {
	root := filepath.FromSlash("/work/statcube")
	one := baselineDiag(root, "a/a.go", "spanend", "span is not ended")
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, []Diagnostic{one}, root); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	bl, err := LoadBaseline(path, root)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	// Two identical findings against one entry: the second is fresh.
	fresh, matched := bl.Filter([]Diagnostic{one, one})
	if len(fresh) != 1 || len(matched) != 1 {
		t.Fatalf("fresh=%d matched=%d, want 1/1", len(fresh), len(matched))
	}
	// Filter must not consume the baseline across calls.
	fresh, matched = bl.Filter([]Diagnostic{one})
	if len(fresh) != 0 || len(matched) != 1 {
		t.Fatalf("second Filter call: fresh=%d matched=%d, want 0/1", len(fresh), len(matched))
	}
}

func TestBaselineUnrelatedFindingIsFresh(t *testing.T) {
	root := filepath.FromSlash("/work/statcube")
	recorded := baselineDiag(root, "a/a.go", "spanend", "span is not ended")
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, []Diagnostic{recorded}, root); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	bl, err := LoadBaseline(path, root)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	other := baselineDiag(root, "a/a.go", "closeleak", "file is not closed")
	fresh, matched := bl.Filter([]Diagnostic{other})
	if len(fresh) != 1 || len(matched) != 0 {
		t.Fatalf("fresh=%d matched=%d, want 1/0", len(fresh), len(matched))
	}
}

func TestLoadBaselineMissingFileIsError(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.baseline"), ""); err == nil {
		t.Fatal("missing baseline file must be an error, not an empty baseline")
	}
}

func TestLoadBaselineMalformedEntryIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.baseline")
	content := "# header\n\nthis line has no analyzer suffix\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	_, err := LoadBaseline(path, "")
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("want malformed-entry error, got %v", err)
	}
}
