package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output (`statlint -sarif`): the static-analysis results
// interchange format GitHub code scanning ingests, so CI's lint job can
// annotate PR diffs with findings instead of burying them in a log. The
// writer emits the minimal valid subset — tool driver with one rule per
// analyzer, one result per diagnostic with a physical location — and
// nothing speculative: no fixes (SARIF's fix encoding differs from ours),
// no flow traces.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a single-run SARIF 2.1.0 log. File
// paths are rewritten relative to root (the module root) so the URIs
// match repository paths regardless of where the checkout lives; a path
// outside root is emitted as-is.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Position.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && filepath.IsLocal(rel) {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "statlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
