// Package lint is the engine's custom static-analysis framework: a
// stdlib-only analyzer driver (go/parser + go/types, no x/tools) that
// loads and type-checks the module's packages, runs a set of analyzers
// over them, honors `//lint:ignore <analyzer> <reason>` suppressions,
// and reports diagnostics with file:line:col positions.
//
// PRs 1–3 introduced engine-wide conventions — context plumbed first and
// polled in hot loops, budget reservations released on every path,
// metric names literal and unique, goroutines spawned only through
// internal/parallel — that nothing enforced. The analyzers in
// internal/lint/analyzers encode those rules; cmd/statlint is the CLI
// that CI runs (`make lint`).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of the surface: an Analyzer is a named Run function over a
// Pass, a Pass is one type-checked package plus a Report sink. Keeping
// the dependency surface at zero (the module's standing constraint)
// costs us multi-pass fact propagation, which none of the engine's rules
// need.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named rule. Run inspects a single package and reports
// findings through the Pass; the driver runs analyzers in order over
// packages in deterministic (sorted import path) order, so analyzers may
// keep cross-package state in their closures (see metricname).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only filters and
	// lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line rule statement shown by `statlint -list`.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for each finding.
	Run func(pass *Pass) error
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset is the shared file set for every package in the run;
	// positions from any package resolve through it.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// Pkg and Info carry the type-checker's results. Info is always
	// non-nil; on a package with type errors it is partially filled.
	Pkg  *types.Package
	Info *types.Info
	// ImportPath is the package's module-relative import path (e.g.
	// statcube/internal/cube).
	ImportPath string
	// Src maps absolute filenames to source bytes for every file in
	// Files — suggested-fix builders slice it for indentation and
	// expression text.
	Src map[string][]byte

	report func(Diagnostic)
}

// ReportFix records a finding at pos carrying a suggested fix (nil fix
// degrades to a plain finding).
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which rule, where, what — plus, for rules
// with a mechanical remedy, a suggested Fix that `statlint -fix`
// applies.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`
	Fix      *Fix           `json:"fix,omitempty"`

	// Flattened position for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the diagnostic in the conventional
// file:line:col: message (analyzer) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}
