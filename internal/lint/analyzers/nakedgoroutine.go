package analyzers

import (
	"go/ast"

	"statcube/internal/lint"
)

// newNakedgoroutine bans raw `go` statements outside the two packages
// that own concurrency: internal/parallel (the fan-out layer, whose pool
// drains its workers, propagates the first error and honors
// cancellation) and internal/obs (the metrics server's accept loop). A
// goroutine spawned anywhere else escapes the engine's error
// propagation, cancellation draining, and worker accounting — the
// contract PR 2 established and every parallel stage depends on.
func newNakedgoroutine() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "nakedgoroutine",
		Doc:  "no `go` statements outside internal/parallel and internal/obs; fan out through parallel.Stage",
	}
	a.Run = func(pass *lint.Pass) error {
		if pathHasSuffix(pass.ImportPath, "internal/parallel") || pathHasSuffix(pass.ImportPath, "internal/obs") {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(),
						"naked goroutine: spawn through internal/parallel (Stage.ForEach / GroupReduce) so errors, cancellation and worker accounting stay engine-wide")
				}
				return true
			})
		}
		return nil
	}
	return a
}
