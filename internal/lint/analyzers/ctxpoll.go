package analyzers

import (
	"go/ast"
	"go/types"

	"statcube/internal/lint"
)

// newCtxpoll enforces the cancellation contract on the engine's heavy
// paths: an exported function or method named `…Ctx` that loops must
// actually poll or delegate its context — `ctx.Err()`/`ctx.Done()`, a
// `budget.Check(ctx)`/`budget.NewTicker(ctx, …)` call, a `Tick()` on an
// amortizing ticker, or passing ctx to a callee. A `…Ctx` entry point
// whose loops never consult ctx is uncancellable, which PR 3 made a bug:
// every heavy path promises bounded cancellation latency.
//
// The check is function-granular by design: dictionary- or level-sized
// loops legitimately run between polls (colstore's code-range scans), so
// requiring a poll inside every loop would flag correct code. What the
// rule catches is the real failure mode — a Ctx-suffixed API that takes
// a context and ignores it.
func newCtxpoll() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "ctxpoll",
		Doc:  "exported …Ctx functions that loop must poll or delegate their context (ctx.Err, budget.Check, Ticker.Tick, or passing ctx on)",
	}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCtxpoll(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkCtxpoll(pass *lint.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || len(name) <= len("Ctx") || name[len(name)-3:] != "Ctx" {
		return
	}
	ctxObj := firstCtxParam(pass.Info, fd)
	if ctxObj == nil && !hasCtxParam(pass.Info, fd) {
		return // no context parameter at all: not this analyzer's business
	}

	loops := 0
	polled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops++
		case *ast.CallExpr:
			if callPollsCtx(pass.Info, n, ctxObj) {
				polled = true
			}
		}
		return true
	})
	if loops > 0 && !polled {
		pass.Reportf(fd.Name.Pos(),
			"%s loops over work but never polls or delegates its context (use ctx.Err, budget.Check, a budget.Ticker, or pass ctx to callees)", name)
	}
}

// firstCtxParam returns the object of the first parameter when it is a
// named, non-blank context.Context; nil otherwise.
func firstCtxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	first := params.List[0]
	if len(first.Names) == 0 || first.Names[0].Name == "_" {
		return nil
	}
	obj := info.Defs[first.Names[0]]
	if obj == nil || !isContextType(obj.Type()) {
		return nil
	}
	return obj
}

// hasCtxParam reports whether any parameter is a context.Context
// (regardless of position or name).
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// callPollsCtx reports whether the call consults or forwards the context:
// a method on ctx itself (Err, Done, Deadline, Value), ctx passed as any
// argument, or a Tick() call on an amortizing ticker.
func callPollsCtx(info *types.Info, call *ast.CallExpr, ctxObj types.Object) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if ctxObj != nil && usesObject(info, sel.X, ctxObj) {
			return true // ctx.Err() and friends
		}
		if sel.Sel.Name == "Tick" && len(call.Args) == 0 {
			return true // budget.Ticker idiom: tick.Tick() inside the loop
		}
	}
	if ctxObj == nil {
		return false
	}
	for _, arg := range call.Args {
		if usesObject(info, arg, ctxObj) {
			return true
		}
	}
	return false
}

// usesObject reports whether the expression mentions the object.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
