package analyzers

import (
	"go/ast"
	"go/types"

	"statcube/internal/lint"
)

// spanend: an obs span must be ended on every path out of the function
// that created it (or handed off — returned, passed along, captured).
// A span that is never ended reports a wildly wrong duration the next
// time anything reads it, and under the flight recorder it pins its
// ring slot; both failure modes are silent, which is exactly what a
// path-sensitive check is for. The suggested fix inserts
// `defer sp.End()` right after the acquisition (spans have no error
// sibling, so the insertion point is never on a failure path).
func newSpanend() *lint.Analyzer {
	return newLeakAnalyzer(&leakSpec{
		name:    "spanend",
		doc:     "obs spans must be ended (or handed off) on every path",
		acquire: spanAcquire,
		release: spanRelease,
	})
}

func spanAcquire(pass *lint.Pass, stmt ast.Node, list []ast.Stmt, idx int) []acqSite {
	call := singleCall(stmt)
	if call == nil {
		return nil
	}
	if recv := spanMethodRecv(pass.Info, call, "Child"); recv == nil &&
		!calleeFromPkg(pass.Info, call, "internal/obs", "NewSpan") {
		return nil
	}
	fact := leakFact{pos: call.Pos()}
	var name string
	if res, _, ok := acquireBinding(pass.Info, stmt, call); ok {
		if res == nil {
			if !blankResult(stmt) {
				return nil // bound to a selector/index: stored away, a hand-off
			}
		} else {
			fact.obj = res
			name = res.Name()
		}
	}
	site := acqSite{fact: fact, desc: "span (" + spanDesc(pass.Info, call) + ")"}
	if name != "" {
		site.fix = deferInsertionFix(pass, stmt.(ast.Stmt), list, idx, nil, "defer "+name+".End()")
	}
	return []acqSite{site}
}

func spanRelease(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	recv := spanMethodRecv(info, call, "End")
	if recv == nil {
		return nil, false
	}
	if o := exprObj(info, recv); o != nil {
		return o, false
	}
	return nil, true
}

// spanMethodRecv returns the receiver expression when call invokes the
// named method on internal/obs's Span, else nil.
func spanMethodRecv(info *types.Info, call *ast.CallExpr, name string) ast.Expr {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name || !isMethod(f) || f.Pkg() == nil ||
		!pathHasSuffix(f.Pkg().Path(), "internal/obs") || recvTypeName(f) != "Span" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// spanDesc names the acquisition for the diagnostic: NewSpan or Child.
func spanDesc(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil && f.Name() == "Child" {
		return "Span.Child"
	}
	return "obs.NewSpan"
}

// blankResult reports whether the acquisition's resource position is the
// blank identifier or the whole result is discarded — the fact then has
// no object and only a wildcard release can cover it.
func blankResult(stmt ast.Node) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return true // ExprStmt: result discarded entirely
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	return ok && id.Name == "_"
}
