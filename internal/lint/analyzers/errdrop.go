package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"statcube/internal/lint"
	"statcube/internal/lint/cfg"
	"statcube/internal/lint/dataflow"
)

// errdrop: an error-typed value assigned from a call must be READ —
// checked, returned, wrapped, passed on, captured, or explicitly
// discarded with `_ = err` — before it is overwritten or goes out of
// scope. Go's compiler only rejects completely unused variables; `err`
// reassigned before a check, or assigned on one branch and abandoned,
// sails through and silently swallows the failure. This runs the same
// forward dataflow as the leak analyzers with two fact flavors:
//
//   - a LIVE fact ("assigned at pos, not yet read"), killed by any
//     identifier use (conditions, returns, call arguments, closures
//     capturing the variable, `_ = err`, a naked return reading a named
//     error result) and by terminating paths (panic, os.Exit);
//   - a READ TOKEN minted when a live fact is killed by a read. Tokens
//     are inert and flow to exit; a token reaching exit means the
//     assignment WAS read on some path, which suppresses the report.
//     This is deliberate: `if serveErr := wait(); err == nil { err =
//     serveErr }` reads serveErr only on one branch, and that
//     first-error-wins idiom is a check, not a drop.
//
// Only variables declared inside the analyzed function are tracked: a
// closure assigning a captured accumulator (`walkErr = ...` inside a
// store.ForEach callback) hands the value to its enclosing function,
// whose read the closure's own CFG cannot see.
//
// Two findings result: a live fact at exit with no matching token
// ("never checked"), and a live fact overwritten by a fresh assignment
// with no token minted yet ("overwritten before being checked"),
// reported at the ORIGINAL assignment so the dropped failure is what
// gets the annotation.
func newErrdrop() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "errdrop",
		Doc:  "error results from calls must be checked, propagated, or explicitly discarded",
	}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, fn := range functionsOf(f) {
				runErrdropFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

// errFact is one unread error assignment (read false) or the token
// minted when it is read (read true).
type errFact struct {
	obj  types.Object
	pos  token.Pos
	read bool
}

type errdropEngine struct {
	pass *lint.Pass
	// fnPos/fnEnd bound the analyzed function: only objects declared
	// inside are tracked.
	fnPos, fnEnd token.Pos
	// namedErrs holds the function's named error result objects, which a
	// naked return reads implicitly.
	namedErrs map[types.Object]bool
}

func runErrdropFunc(pass *lint.Pass, fn ast.Node) {
	e := &errdropEngine{
		pass:      pass,
		fnPos:     fn.Pos(),
		fnEnd:     fn.End(),
		namedErrs: namedErrorResults(pass.Info, fn),
	}
	g := cfg.Build(fn)
	res := dataflow.Forward(g, dataflow.Problem[errFact]{Transfer: e.transfer})

	exit := res.AtExit()
	wasRead := func(s dataflow.Set[errFact], f errFact) bool {
		return s.Has(errFact{obj: f.obj, pos: f.pos, read: true})
	}

	reported := map[token.Pos]bool{}
	// Replay for overwrite findings: a live fact whose variable this
	// assignment rewrites — with no read recorded on any path in — was
	// dropped here.
	res.ReplayBlocks(func(n ast.Node, before dataflow.Set[errFact]) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		writes := bareLHSObjs(e.pass.Info, as)
		for fact := range before {
			if fact.read || !writes[fact.obj] || containsPos(as, fact.pos) {
				continue
			}
			if wasRead(before, fact) || reported[fact.pos] {
				continue
			}
			reported[fact.pos] = true
			pass.Reportf(fact.pos, "error assigned here is overwritten before being checked")
		}
	})
	for fact := range exit {
		if fact.read || reported[fact.pos] || wasRead(exit, fact) {
			continue
		}
		reported[fact.pos] = true
		pass.Reportf(fact.pos, "error %s is never checked (check it, return it, or discard with _ = %s)",
			fact.obj.Name(), fact.obj.Name())
	}
}

func (e *errdropEngine) transfer(n ast.Node, facts dataflow.Set[errFact]) {
	// Terminating paths: the error is moot. Live facts die; read tokens
	// survive (the read still happened on this path).
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
			for fact := range facts {
				if !fact.read {
					facts.Delete(fact)
				}
			}
			return
		}
	}

	readFact := func(fact errFact) {
		facts.Delete(fact)
		facts.Add(errFact{obj: fact.obj, pos: fact.pos, read: true})
	}

	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 && len(e.namedErrs) > 0 {
		// Naked return: the named error result is read implicitly.
		for fact := range facts {
			if !fact.read && e.namedErrs[fact.obj] {
				readFact(fact)
			}
		}
	}

	as, isAssign := n.(*ast.AssignStmt)

	// Reads: every identifier use in the node EXCEPT bare assignment
	// targets (those are writes).
	reads := map[types.Object]bool{}
	collect := func(x ast.Node) {
		for o := range mentionedObjs(e.pass.Info, x) {
			reads[o] = true
		}
	}
	if isAssign {
		for _, rhs := range as.Rhs {
			collect(rhs)
		}
		for _, lhs := range as.Lhs {
			if _, bare := ast.Unparen(lhs).(*ast.Ident); !bare {
				collect(lhs) // m[err] = v reads err
			}
		}
	} else if rs, ok := n.(*ast.RangeStmt); ok {
		// The range head node carries the whole loop; body statements have
		// their own blocks, so only the ranged expression is read here.
		collect(rs.X)
	} else {
		collect(n)
	}
	for fact := range facts {
		if !fact.read && reads[fact.obj] {
			readFact(fact)
		}
	}

	if !isAssign {
		return
	}

	// Writes kill the live fact without minting a token (the replay pass
	// reports the overwrite); error-typed function-local targets assigned
	// from a call gain a fresh fact.
	writes := bareLHSObjs(e.pass.Info, as)
	for fact := range facts {
		if !fact.read && writes[fact.obj] {
			facts.Delete(fact)
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := lhsObj(e.pass.Info, lhs)
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		if obj.Pos() < e.fnPos || obj.Pos() >= e.fnEnd {
			continue // captured from an enclosing function: not ours to judge
		}
		if !rhsIsCall(as, i) {
			continue
		}
		facts.Add(errFact{obj: obj, pos: id.Pos()})
	}
}

// bareLHSObjs returns the objects written by plain-identifier assignment
// targets.
func bareLHSObjs(info *types.Info, as *ast.AssignStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, lhs := range as.Lhs {
		if o := lhsObj(info, lhs); o != nil {
			out[o] = true
		}
	}
	return out
}

// rhsIsCall reports whether the value assigned to LHS index i comes from
// a call: either the single multi-value call RHS, or a per-position
// call in a parallel assignment.
func rhsIsCall(as *ast.AssignStmt, i int) bool {
	if len(as.Rhs) == 1 && len(as.Lhs) > len(as.Rhs) {
		_, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		return ok
	}
	if i < len(as.Rhs) {
		_, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		return ok
	}
	return false
}

// containsPos reports whether pos falls inside n — used to tell a fact
// created by THIS assignment (loop back-edge) from one it overwrites.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// namedErrorResults collects fn's named error-typed result objects.
func namedErrorResults(info *types.Info, fn ast.Node) map[types.Object]bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	out := map[types.Object]bool{}
	if ft == nil || ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if o := info.Defs[name]; o != nil && isErrorType(o.Type()) {
				out[o] = true
			}
		}
	}
	return out
}
