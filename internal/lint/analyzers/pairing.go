package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"statcube/internal/lint"
	"statcube/internal/lint/cfg"
	"statcube/internal/lint/dataflow"
)

// The acquire/release pairing framework: ledgerleak, spanend and
// closeleak are all the same analysis with different vocabularies. A
// statement may acquire a resource (a budget reservation, a span, a file
// handle), bound to a variable and optionally to a sibling error whose
// non-nil branch means the acquisition never happened. The resource must
// then, on EVERY control-flow path to the function's exit, either be
// released (Release/End/Close, directly or via defer) or handed off —
// escape the function's ownership by being returned, passed as a call
// argument, assigned away, stored in a composite literal, sent on a
// channel, or captured by a function literal. A path that reaches exit
// with the resource still owned and unreleased is a leak, reported at
// the acquisition site.
//
// The engine is a forward may-analysis (internal/lint/dataflow) over the
// function's CFG (internal/lint/cfg). Known approximations, documented
// in DESIGN.md §6:
//
//   - releases match by the resource's bound object, not by aliasing: a
//     release through a second variable bound to the same handle is a
//     hand-off at the rebinding, which kills the fact anyway;
//   - a release of an unresolvable receiver kills every fact (wildcard)
//     rather than inventing a spurious leak;
//   - hand-off is syntactic: any mention of the resource in an argument,
//     return value, RHS, send or closure transfers ownership. Method
//     calls ON the resource (f.Read, sp.AddInt) are not hand-offs;
//   - a path that provably terminates (panic, os.Exit, log.Fatal*,
//     runtime.Goexit) is exempt — the process or a recover boundary owns
//     cleanup there;
//   - refinement understands the two-way `err != nil` / `err == nil`
//     split on the acquisition's own error variable; compound conditions
//     are not refined (facts survive both edges — the conservative,
//     may-leak direction).

// leakFact is one dataflow fact: a live acquisition, or a deferred
// release registered on this path.
type leakFact struct {
	// obj is the resource's bound object (variable or field); nil when
	// the acquisition is positional only (resource discarded or receiver
	// unresolvable), in which case only a wildcard release covers it.
	obj types.Object
	// amt, for ledgerleak, is the reserved-amount variable: its mention
	// in a later call is the hand-off that moves the reservation into a
	// ledger someone else drains.
	amt types.Object
	// errObj is the acquisition's sibling error variable: the branch
	// where it is non-nil kills the fact (the acquisition failed).
	errObj types.Object
	// pos is the acquisition site (or the defer site for deferred
	// facts) — the report anchor and the fact's identity.
	pos token.Pos
	// deferred marks a registered deferred release of obj (obj == nil:
	// a wildcard release covering every resource on this path).
	deferred bool
}

// acqSite is one acquisition found by the pre-pass, keyed by the
// statement node that performs it so the transfer function can map CFG
// nodes back to acquisitions.
type acqSite struct {
	fact leakFact
	desc string
	// fix, when non-nil, is the ready-built suggested fix (defer
	// insertion) for a leak reported at this site.
	fix *lint.Fix
}

// leakSpec is one analyzer's vocabulary over the shared engine.
type leakSpec struct {
	name string
	doc  string
	// acquire inspects one statement (AssignStmt, or ExprStmt for
	// result-discarding acquisitions) and returns its acquisitions.
	// stmts carries the enclosing block's statement list and the
	// statement's index so fix builders can look at the following
	// error check; list is nil when the statement is an if/for init.
	acquire func(pass *lint.Pass, stmt ast.Node, list []ast.Stmt, idx int) []acqSite
	// release classifies a call: released != nil names the resource
	// object the call releases; wildcard releases everything.
	release func(info *types.Info, call *ast.CallExpr) (released types.Object, wildcard bool)
}

// newLeakAnalyzer builds a path-sensitive analyzer from a spec.
func newLeakAnalyzer(spec *leakSpec) *lint.Analyzer {
	a := &lint.Analyzer{Name: spec.name, Doc: spec.doc}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, fn := range functionsOf(f) {
				runLeakFunc(pass, spec, fn)
			}
		}
		return nil
	}
	return a
}

// functionsOf returns every function body in the file: declarations plus
// each function literal (closures are analyzed as functions in their own
// right; the engine treats them as opaque from the enclosing function).
func functionsOf(f *ast.File) []ast.Node {
	var fns []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fns = append(fns, n)
			}
		case *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	return fns
}

// leakEngine is the per-function analysis state.
type leakEngine struct {
	pass *lint.Pass
	spec *leakSpec
	// acqs maps the CFG node performing an acquisition to its sites.
	acqs map[ast.Node][]acqSite
}

func runLeakFunc(pass *lint.Pass, spec *leakSpec, fn ast.Node) {
	e := &leakEngine{pass: pass, spec: spec, acqs: map[ast.Node][]acqSite{}}
	e.collectAcquisitions(fn)
	if len(e.acqs) == 0 {
		return // nothing acquired, nothing to leak
	}
	g := cfg.Build(fn)
	res := dataflow.Forward(g, dataflow.Problem[leakFact]{
		Transfer: e.transfer,
		Refine:   e.refine,
	})

	// A fact at exit leaks unless a deferred release on the same path
	// covers it.
	exit := res.AtExit()
	leaked := map[token.Pos]bool{}
	for fact := range exit {
		if fact.deferred {
			continue
		}
		if coveredByDefer(exit, fact) {
			continue
		}
		leaked[fact.pos] = true
	}
	if len(leaked) == 0 {
		return
	}
	// Report in source order via the collected sites (each site appears
	// once, so diagnostics are deterministic and deduplicated even when
	// both errObj variants of a fact reach exit).
	var sites []acqSite
	for _, list := range e.acqs {
		for _, s := range list {
			if leaked[s.fact.pos] {
				sites = append(sites, s)
			}
		}
	}
	for _, s := range sites {
		pass.ReportFix(s.fact.pos, s.fix, "%s is not released on every path to return (add a release, a defer, or hand ownership off)", s.desc)
	}
}

// coveredByDefer reports whether a deferred release in the same exit set
// covers the fact.
func coveredByDefer(exit dataflow.Set[leakFact], fact leakFact) bool {
	for d := range exit {
		if !d.deferred {
			continue
		}
		if d.obj == nil || (fact.obj != nil && d.obj == fact.obj) {
			return true
		}
	}
	return false
}

// collectAcquisitions pre-walks the function for acquisition statements,
// recording block context (for fix placement) where available. The walk
// does not descend into nested function literals — those are analyzed
// separately.
func (e *leakEngine) collectAcquisitions(fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	seen := map[ast.Node]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				for i, st := range n.List {
					e.tryAcquire(st, n.List, i, seen)
				}
			case *ast.IfStmt:
				if n.Init != nil {
					e.tryAcquire(n.Init, nil, 0, seen)
				}
			case *ast.ForStmt:
				if n.Init != nil {
					e.tryAcquire(n.Init, nil, 0, seen)
				}
			case *ast.SwitchStmt:
				if n.Init != nil {
					e.tryAcquire(n.Init, nil, 0, seen)
				}
			}
			return true
		})
	}
	walk(body)
}

// tryAcquire records stmt's acquisitions once.
func (e *leakEngine) tryAcquire(stmt ast.Stmt, list []ast.Stmt, idx int, seen map[ast.Node]bool) {
	if seen[stmt] {
		return
	}
	seen[stmt] = true
	if sites := e.spec.acquire(e.pass, stmt, list, idx); len(sites) > 0 {
		e.acqs[stmt] = sites
	}
}

// funcBody returns fn's body.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// transfer folds one CFG node into the fact set.
func (e *leakEngine) transfer(n ast.Node, facts dataflow.Set[leakFact]) {
	// Terminating paths (panic, os.Exit, log.Fatal*) are exempt: the
	// process — or the recover boundary — owns cleanup there.
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
			clear(facts)
			return
		}
	}

	if d, ok := n.(*ast.DeferStmt); ok {
		e.transferDefer(d, facts)
		return
	}

	// Releases and hand-offs anywhere in the node.
	e.walkKills(n, facts)

	// Error-variable redefinition: once the acquisition's error variable
	// is overwritten, the `err != nil` refinement no longer describes
	// the acquisition — drop the link (keep the fact).
	if redef := assignedObjs(e.pass.Info, n); len(redef) > 0 {
		for fact := range facts {
			if fact.errObj != nil && redef[fact.errObj] {
				facts.Delete(fact)
				fact.errObj = nil
				facts.Add(fact)
			}
		}
	}

	// Acquisitions recorded for this node.
	for _, s := range e.acqs[n] {
		facts.Add(s.fact)
	}
}

// transferDefer interprets a defer statement: a deferred release
// registers coverage for this path; a deferred closure registers every
// release inside it; any other mention of a tracked resource in the
// deferred call is a hand-off.
func (e *leakEngine) transferDefer(d *ast.DeferStmt, facts dataflow.Set[leakFact]) {
	if obj, wildcard := e.spec.release(e.pass.Info, d.Call); obj != nil || wildcard {
		facts.Add(leakFact{obj: obj, pos: d.Pos(), deferred: true})
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		// Releases inside the deferred closure count as deferred; other
		// resource mentions inside it are hand-offs.
		released := map[types.Object]bool{}
		wildcardRelease := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, wc := e.spec.release(e.pass.Info, call); obj != nil {
					released[obj] = true
				} else if wc {
					wildcardRelease = true
				}
			}
			return true
		})
		if wildcardRelease {
			facts.Add(leakFact{pos: d.Pos(), deferred: true})
		}
		for obj := range released {
			facts.Add(leakFact{obj: obj, pos: d.Pos(), deferred: true})
		}
		mentioned := mentionedObjs(e.pass.Info, lit.Body)
		e.killMentioned(facts, func(o types.Object) bool { return mentioned[o] && !released[o] })
		return
	}
	// Plain deferred call: arguments are hand-offs (defer cleanup(f)).
	for _, arg := range d.Call.Args {
		m := mentionedObjs(e.pass.Info, arg)
		e.killMentioned(facts, func(o types.Object) bool { return m[o] })
	}
}

// walkKills applies releases and hand-offs found anywhere in n, without
// descending into function literals (any tracked resource a literal
// mentions is handed off to it wholesale).
func (e *leakEngine) walkKills(n ast.Node, facts dataflow.Set[leakFact]) {
	// A RangeStmt head node carries the whole loop; its body statements
	// live in their own CFG blocks, so only the ranged expression belongs
	// to this program point (walking the body here would apply its
	// releases before the loop even runs).
	if rs, ok := n.(*ast.RangeStmt); ok {
		n = rs.X
	}
	isAcq := len(e.acqs[n]) > 0
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			m := mentionedObjs(e.pass.Info, n.Body)
			e.killMentioned(facts, func(o types.Object) bool { return m[o] })
			return false
		case *ast.CallExpr:
			if obj, wildcard := e.spec.release(e.pass.Info, n); obj != nil || wildcard {
				e.kill(facts, obj, wildcard)
				return true
			}
			for _, arg := range n.Args {
				m := mentionedObjsNoRecv(e.pass.Info, arg)
				e.killMentioned(facts, func(o types.Object) bool { return m[o] })
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				m := mentionedObjsNoRecv(e.pass.Info, r)
				e.killMentioned(facts, func(o types.Object) bool { return m[o] })
			}
		case *ast.SendStmt:
			m := mentionedObjsNoRecv(e.pass.Info, n.Value)
			e.killMentioned(facts, func(o types.Object) bool { return m[o] })
		case *ast.AssignStmt:
			// A resource on the RHS is being rebound or stored — a
			// hand-off. The acquiring statement's own RHS is exempt
			// (it is the acquisition call; older same-named facts are
			// re-acquisitions handled by identity of position).
			if isAcq {
				return true
			}
			for _, rhs := range n.Rhs {
				m := mentionedObjsNoRecv(e.pass.Info, rhs)
				e.killMentioned(facts, func(o types.Object) bool { return m[o] })
			}
		}
		return true
	})
}

// kill removes acquisition facts for obj (or all, when wildcard).
func (e *leakEngine) kill(facts dataflow.Set[leakFact], obj types.Object, wildcard bool) {
	for fact := range facts {
		if fact.deferred {
			continue
		}
		if wildcard || (obj != nil && (fact.obj == obj || fact.obj == nil)) {
			facts.Delete(fact)
		}
	}
}

// killMentioned removes acquisition facts whose resource or amount
// object satisfies hit.
func (e *leakEngine) killMentioned(facts dataflow.Set[leakFact], hit func(types.Object) bool) {
	for fact := range facts {
		if fact.deferred {
			continue
		}
		if (fact.obj != nil && hit(fact.obj)) || (fact.amt != nil && hit(fact.amt)) {
			facts.Delete(fact)
		}
	}
}

// refine kills acquisitions on the branch where their own error variable
// is non-nil — the acquisition failed there, so there is nothing to
// release.
func (e *leakEngine) refine(cond ast.Expr, val bool, facts dataflow.Set[leakFact]) {
	obj, isNeq := errNilCheck(e.pass.Info, cond)
	if obj == nil {
		return
	}
	errIsNonNil := (isNeq && val) || (!isNeq && !val)
	if !errIsNonNil {
		return
	}
	for fact := range facts {
		if !fact.deferred && fact.errObj == obj {
			facts.Delete(fact)
		}
	}
}

// errNilCheck recognizes `X != nil` (isNeq true) and `X == nil` where X
// resolves to an error-typed object, returning that object.
func errNilCheck(info *types.Info, cond ast.Expr) (obj types.Object, isNeq bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isUntypedNil(info, y) {
		// keep x
	} else if isUntypedNil(info, x) {
		x = y
	} else {
		return nil, false
	}
	o := exprObj(info, x)
	if o == nil || !isErrorType(o.Type()) {
		return nil, false
	}
	return o, b.Op == token.NEQ
}

// exprObj resolves an ident or a selector's field to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// mentionedObjs collects every object used by identifiers in the
// subtree (function literals included — a capture is a mention).
func mentionedObjs(info *types.Info, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				out[o] = true
			}
		}
		return true
	})
	return out
}

// mentionedObjsNoRecv is mentionedObjs minus objects whose every mention
// sits in the receiver chain of a method call: `return f.Name()` reads a
// property of f, it does not transfer ownership, so the leak fact must
// survive. An object also appearing outside a receiver position
// (`use(f)`, `return f`, `f.Read(buf)` as an argument `use(f.Read(buf))`
// still mentions buf, not f, in arg position) counts as handed off as
// before. Method-value hand-offs (`return f.Close` with no call) are not
// receiver positions and still kill.
func mentionedObjsNoRecv(info *types.Info, n ast.Node) map[types.Object]bool {
	total := map[types.Object]int{}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				total[o]++
			}
		}
		return true
	})
	recv := map[types.Object]int{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, _ := info.Uses[sel.Sel].(*types.Func)
		if f == nil || !isMethod(f) {
			return true
		}
		// Credit each ident along a pure ident/selector receiver chain;
		// receivers containing calls or indexing are left to the normal
		// mention count.
		x := ast.Unparen(sel.X)
	chain:
		for {
			switch e := x.(type) {
			case *ast.Ident:
				if o := info.Uses[e]; o != nil {
					recv[o]++
				}
				break chain
			case *ast.SelectorExpr:
				if o := info.Uses[e.Sel]; o != nil {
					recv[o]++
				}
				x = ast.Unparen(e.X)
			default:
				break chain
			}
		}
		return true
	})
	out := map[types.Object]bool{}
	for o, c := range total {
		if c > recv[o] {
			out[o] = true
		}
	}
	return out
}

// assignedObjs collects the objects (re)defined by n's assignment
// targets — AssignStmt LHS idents and RangeStmt key/value idents.
func assignedObjs(info *types.Info, n ast.Node) map[types.Object]bool {
	var targets []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		targets = n.Lhs
	case *ast.RangeStmt:
		if n.Key != nil {
			targets = append(targets, n.Key)
		}
		if n.Value != nil {
			targets = append(targets, n.Value)
		}
	default:
		return nil
	}
	out := map[types.Object]bool{}
	for _, t := range targets {
		if id, ok := ast.Unparen(t).(*ast.Ident); ok {
			if o := info.Defs[id]; o != nil {
				out[o] = true
			} else if o := info.Uses[id]; o != nil {
				out[o] = true
			}
		}
	}
	return out
}

// isTerminatorCall mirrors cfg's terminator set for the transfer
// function (the CFG already routes these to exit; killing the facts here
// keeps terminated paths out of the leak report).
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// acquireBinding resolves the common acquisition shapes shared by the
// specs: for `res, err := call(...)` style statements it returns the
// bound resource object at LHS index 0 and the error object (last LHS
// when error-typed). ok is false when stmt is not an assignment whose
// RHS is the given call.
func acquireBinding(info *types.Info, stmt ast.Node, call *ast.CallExpr) (res, errObj types.Object, ok bool) {
	as, isAssign := stmt.(*ast.AssignStmt)
	if !isAssign || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
		return nil, nil, false
	}
	if len(as.Lhs) > 0 {
		res = lhsObj(info, as.Lhs[0])
	}
	if last := as.Lhs[len(as.Lhs)-1]; len(as.Lhs) > 1 {
		if o := lhsObj(info, last); o != nil && isErrorType(o.Type()) {
			errObj = o
		}
	} else if o := lhsObj(info, as.Lhs[0]); o != nil && isErrorType(o.Type()) {
		// Single LHS which IS the error (ledgerleak's err := Reserve).
		res, errObj = nil, o
	}
	return res, errObj, true
}

// lhsObj resolves an assignment target ident to its object (nil for
// blank or non-ident targets).
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// singleCall extracts the lone call of an assignment or expression
// statement.
func singleCall(stmt ast.Node) *ast.CallExpr {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if c, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				return c
			}
		}
	case *ast.ExprStmt:
		if c, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return c
		}
	}
	return nil
}

// deferInsertionFix builds the `defer <recv>.<method>()` insertion fix
// shared by spanend and closeleak: the defer lands after the acquiring
// statement, or after the immediately following `if err != nil` check
// when one exists (list/idx locate the statement in its block; a nil
// list — an if/for init — gets no fix).
func deferInsertionFix(pass *lint.Pass, stmt ast.Node, list []ast.Stmt, idx int, errObj types.Object, deferText string) *lint.Fix {
	if list == nil {
		return nil
	}
	insertAfter := stmt
	if errObj != nil {
		if idx+1 < len(list) {
			if ifs, ok := list[idx+1].(*ast.IfStmt); ok {
				if o, _ := errNilCheck(pass.Info, ifs.Cond); o == errObj && ifs.Init == nil {
					insertAfter = ifs
				}
			}
		}
		if insertAfter == stmt {
			// No adjacent error check to anchor on: inserting the defer
			// before the check would run it on the failure path too.
			// Leave the finding fix-less rather than suggest wrong code.
			return nil
		}
	}
	end := pass.Fset.Position(insertAfter.End())
	src := pass.Src[end.Filename]
	if src == nil {
		return nil
	}
	start := pass.Fset.Position(stmt.Pos())
	indent := lineIndent(src, start.Offset, start.Column)
	return &lint.Fix{
		Message: "insert " + deferText,
		Edits: []lint.TextEdit{{
			File:  end.Filename,
			Start: end.Offset,
			End:   end.Offset,
			New:   "\n" + indent + deferText,
		}},
	}
}

// lineIndent returns the leading whitespace of the line containing the
// byte at offset (whose 1-based column is col).
func lineIndent(src []byte, offset, col int) string {
	start := offset - (col - 1)
	if start < 0 || start > offset || offset > len(src) {
		return "\t"
	}
	ws := src[start:offset]
	for _, c := range ws {
		if c != ' ' && c != '\t' {
			return "\t"
		}
	}
	return string(ws)
}
