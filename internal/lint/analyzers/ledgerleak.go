package analyzers

import (
	"go/ast"
	"go/types"

	"statcube/internal/lint"
)

// ledgerleak: every budget.Governor.Reserve must be balanced by a
// Release — or hand the reservation off — on every path out of the
// function. An unbalanced path strands cells in the admission ledger
// until the process restarts, which slowly chokes query admission (the
// exact bug class PR 2's manual audit fixed once; this keeps it fixed).
//
// Hand-off forms the analyzer recognizes: the governor escaping into a
// call/return/closure, or the reserved AMOUNT variable being passed on
// (the accountant pattern in internal/cube: gov.Reserve(b) followed by
// a.reserved.Add(b) moves the reservation into a ledger that a later
// close() drains wholesale). AddCells is intentionally out of scope —
// cube cell accounting is released wholesale by design, not per call.
func newLedgerleak() *lint.Analyzer {
	return newLeakAnalyzer(&leakSpec{
		name:    "ledgerleak",
		doc:     "budget.Governor.Reserve must reach Release or a hand-off on every path",
		acquire: ledgerAcquire,
		release: ledgerRelease,
	})
}

func ledgerAcquire(pass *lint.Pass, stmt ast.Node, list []ast.Stmt, idx int) []acqSite {
	call := singleCall(stmt)
	if call == nil {
		return nil
	}
	recv := governorMethodRecv(pass.Info, call, "Reserve")
	if recv == nil {
		return nil
	}
	fact := leakFact{obj: exprObj(pass.Info, recv), pos: call.Pos()}
	if len(call.Args) == 1 {
		fact.amt = exprObj(pass.Info, call.Args[0])
	}
	if _, errObj, ok := acquireBinding(pass.Info, stmt, call); ok {
		fact.errObj = errObj
	}
	return []acqSite{{fact: fact, desc: "budget reservation (Governor.Reserve)"}}
}

func ledgerRelease(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	recv := governorMethodRecv(info, call, "Release")
	if recv == nil {
		return nil, false
	}
	if o := exprObj(info, recv); o != nil {
		return o, false
	}
	return nil, true // Release through an unresolvable receiver: covers everything
}

// governorMethodRecv returns the receiver expression when call invokes
// the named method on internal/budget's Governor, else nil.
func governorMethodRecv(info *types.Info, call *ast.CallExpr, name string) ast.Expr {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name || !isMethod(f) || f.Pkg() == nil ||
		!pathHasSuffix(f.Pkg().Path(), "internal/budget") || recvTypeName(f) != "Governor" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// recvTypeName returns the name of a method's receiver named type
// (pointer-stripped), or "".
func recvTypeName(f *types.Func) string {
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
