package analyzers

import (
	"go/ast"

	"statcube/internal/lint"
)

// newCtxfirst enforces the standard Go context discipline the whole ctx
// plumbing of PR 3 relies on: context.Context travels as the first
// parameter of a call chain and is never stored in a struct, where it
// would outlive the request that created it and silently decouple
// cancellation from the work it governs. The two sanctioned exceptions
// in the tree — budget.Ticker (a loop-local poll amortizer) and
// parallel.Stage (an options struct consumed before the call returns) —
// carry //lint:ignore directives with their reasons.
func newCtxfirst() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context must be the first parameter and must not be stored in a struct field",
	}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkParamOrder(pass, n.Type)
				case *ast.FuncLit:
					checkParamOrder(pass, n.Type)
				case *ast.InterfaceType:
					for _, m := range n.Methods.List {
						if ft, ok := m.Type.(*ast.FuncType); ok {
							checkParamOrder(pass, ft)
						}
					}
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
							pass.Reportf(field.Pos(),
								"context.Context stored in a struct field: pass it as a parameter so cancellation follows the call")
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkParamOrder flags context.Context parameters that are not in the
// leading position. A context after the first slot is reported once per
// offending parameter.
func checkParamOrder(pass *lint.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting names within a shared field
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}
