package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"statcube/internal/lint"
)

// newRecoverboundary confines recover() to the sanctioned panic
// boundaries. The engine's failure model (DESIGN.md §"Failure model &
// durability") is that a panic anywhere in a query crosses at most one
// boundary — the internal/parallel worker loop, which converts it to a
// typed ErrWorkerPanic — and otherwise crashes the process. A recover()
// sprinkled into an engine package would silently swallow invariant
// violations mid-build, leaving half-written views and unreleased budget
// reservations: exactly the partial states the chaos suite exists to
// rule out. Sanctioned boundaries:
//
//   - internal/parallel: the worker loop's containment point, where the
//     recovered value becomes an error that the pool propagates.
//   - cmd/ packages: a main func may recover to choose an exit code;
//     CLIs own their process lifecycle.
//   - _test.go files: never seen here — the loader excludes test files,
//     so `if recover() == nil` panic assertions stay legal for free.
func newRecoverboundary() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "recoverboundary",
		Doc:  "recover() only in internal/parallel, cmd/ packages and _test.go files; panics elsewhere must reach a worker boundary",
	}
	a.Run = func(pass *lint.Pass) error {
		if pathHasSuffix(pass.ImportPath, "internal/parallel") || hasCmdSegment(pass.ImportPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "recover" {
					return true
				}
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
					return true // a local func shadowing the name
				}
				pass.Reportf(call.Pos(),
					"recover() outside a sanctioned boundary: panics must surface as parallel.ErrWorkerPanic at the internal/parallel worker loop, not be swallowed mid-engine")
				return true
			})
		}
		return nil
	}
	return a
}

// hasCmdSegment reports whether the import path contains a cmd/ path
// segment ("cmd/statcli", "statcube/cmd/statlint", nested corpus paths).
func hasCmdSegment(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
