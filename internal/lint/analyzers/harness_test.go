package analyzers

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"statcube/internal/lint"
)

// wantRE extracts the expectation from a `// want "regexp"` trailing
// comment in a corpus file.
var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// runCorpus runs exactly one analyzer over its testdata corpus and
// diffs the produced diagnostics against the corpus's want annotations:
// every want line must produce a matching diagnostic and every
// diagnostic must land on a want line. Suppression runs first, so
// corpus files also lock in that //lint:ignore keeps working end to end.
func runCorpus(t *testing.T, name string) {
	t.Helper()
	a := ByName(name)
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}
	dir := filepath.Join("testdata", "src", name)
	loader, err := lint.NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	res, err := lint.Run(loader, []string{dir + "/..."}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, te := range res.TypeErrors {
		t.Errorf("corpus must type-check: %v", te)
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := collectWants(t, dir)
	matched := map[string]bool{}
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		if !w.MatchString(d.Message) {
			t.Errorf("diagnostic at %s does not match want %q: %s", key, w, d.Message)
		}
		matched[key] = true
	}
	for key, w := range wants {
		if !matched[key] {
			t.Errorf("missing diagnostic at %s: want match for %q", key, w)
		}
	}
}

// collectWants scans every corpus file for want annotations, keyed by
// absolute-file:line.
func collectWants(t *testing.T, dir string) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regexp %q: %w", p, i+1, m[1], err)
			}
			wants[fmt.Sprintf("%s:%d", abs, i+1)] = re
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want annotations; it cannot prove the analyzer fires", dir)
	}
	return wants
}

func TestCtxpollCorpus(t *testing.T)         { runCorpus(t, "ctxpoll") }
func TestCtxfirstCorpus(t *testing.T)        { runCorpus(t, "ctxfirst") }
func TestNakedgoroutineCorpus(t *testing.T)  { runCorpus(t, "nakedgoroutine") }
func TestErrwrapCorpus(t *testing.T)         { runCorpus(t, "errwrap") }
func TestMetricnameCorpus(t *testing.T)      { runCorpus(t, "metricname") }
func TestNodetermCorpus(t *testing.T)        { runCorpus(t, "nodeterm") }
func TestRecoverboundaryCorpus(t *testing.T) { runCorpus(t, "recoverboundary") }
func TestLedgerleakCorpus(t *testing.T)      { runCorpus(t, "ledgerleak") }
func TestSpanendCorpus(t *testing.T)         { runCorpus(t, "spanend") }
func TestCloseleakCorpus(t *testing.T)       { runCorpus(t, "closeleak") }
func TestErrdropCorpus(t *testing.T)         { runCorpus(t, "errdrop") }

// TestAllFresh locks in that All returns fresh analyzer instances:
// metricname's uniqueness ledger must not leak between driver runs, or
// the second run over the same tree would report every registration as
// a duplicate.
func TestAllFresh(t *testing.T) {
	for i := 0; i < 2; i++ {
		loader, err := lint.NewLoader("")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		res, err := lint.Run(loader, []string{filepath.Join("testdata", "src", "metricname")}, []*lint.Analyzer{ByName("metricname")})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		const want = 6 // the corpus's seeded violations
		if got := len(res.Diagnostics); got != want {
			t.Fatalf("run %d: got %d diagnostics, want %d (stale cross-run ledger?)", i, got, want)
		}
	}
}
