package analyzers

import (
	"go/ast"
	"strings"

	"statcube/internal/lint"
)

// newNodeterm keeps the deterministic counter paths deterministic. The
// bench-regression gate diffs engine counters against a committed
// baseline with a tight tolerance, and the experiment suite's claim
// checks assume identical numbers across runs; both collapse if an
// internal/ package derives work from wall-clock time or an unseeded
// random stream. Two sources are flagged inside internal/ (internal/obs
// excepted — measuring wall-clock latency is its whole job):
//
//   - time.Now / time.Since: wall-clock reads. The sanctioned latency
//     probes in query/ and experiments/ carry //lint:ignore directives
//     stating that their output feeds only machine-dependent metrics
//     (duration histograms, duration_ms) that benchdiff excludes.
//   - math/rand package-level functions (rand.Intn, rand.Float64, …):
//     the global generator is seeded randomly since Go 1.20. Seeded
//     generators via rand.New(rand.NewSource(seed)) — the workload and
//     experiment idiom — stay legal, as do methods on a *rand.Rand.
//
// cmd/ and scripts/ are out of scope: CLIs legitimately time things.
func newNodeterm() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "nodeterm",
		Doc:  "no time.Now/time.Since or global math/rand in internal/ (except internal/obs); seed a *rand.Rand instead",
	}
	a.Run = func(pass *lint.Pass) error {
		if !strings.Contains(pass.ImportPath, "/internal/") && !strings.HasPrefix(pass.ImportPath, "internal/") {
			return nil
		}
		if pathHasSuffix(pass.ImportPath, "internal/obs") {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						pass.Reportf(call.Pos(),
							"time.%s in a deterministic counter path: wall-clock reads drift the bench baseline (move timing to internal/obs or suppress with a reason)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !strings.HasPrefix(fn.Name(), "New") && !isMethod(fn) {
						pass.Reportf(call.Pos(),
							"global rand.%s is nondeterministically seeded: use rand.New(rand.NewSource(seed)) so runs reproduce", fn.Name())
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
