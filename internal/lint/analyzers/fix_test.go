package analyzers

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"statcube/internal/lint"
)

// runFixCorpus locks in the -fix contract end to end for one analyzer:
// every finding in the corpus carries a fix, applying the fixes
// reproduces the .golden file byte for byte, and the fixed code both
// type-checks and re-lints clean (the round trip).
func runFixCorpus(t *testing.T, name string, wantFindings int) {
	t.Helper()
	a := ByName(name)
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}
	dir := filepath.Join("testdata", "fix", name)
	loader, err := lint.NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	res, err := lint.Run(loader, []string{dir}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, te := range res.TypeErrors {
		t.Errorf("fix corpus must type-check: %v", te)
	}
	if got := len(res.Diagnostics); got != wantFindings {
		for _, d := range res.Diagnostics {
			t.Logf("finding: %s", d.String())
		}
		t.Errorf("got %d finding(s), want %d", got, wantFindings)
	}
	if got := lint.FixCount(res.Diagnostics); got != len(res.Diagnostics) {
		t.Errorf("every corpus finding must carry a fix: %d of %d do", got, len(res.Diagnostics))
	}
	if t.Failed() {
		t.FailNow()
	}

	changed, applied, skipped := lint.ApplyFixes(res.Diagnostics, loader.Sources)
	if skipped != 0 {
		t.Fatalf("ApplyFixes skipped %d fix(es); corpus fixes must not conflict", skipped)
	}
	if applied != wantFindings {
		t.Fatalf("applied %d fix(es), want %d", applied, wantFindings)
	}
	for file, got := range changed {
		want, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Fatalf("reading golden: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from golden:\n--- got ---\n%s--- want ---\n%s", file, got, want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Round trip: write the fixed files as a throwaway package inside
	// testdata (so module imports still resolve) and re-lint — the fixed
	// code must compile with zero remaining findings.
	tmp, err := os.MkdirTemp(filepath.Join("testdata", "fix"), "roundtrip")
	if err != nil {
		t.Fatalf("MkdirTemp: %v", err)
	}
	t.Cleanup(func() { os.RemoveAll(tmp) })
	for file, got := range changed {
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(file)), got, 0o644); err != nil {
			t.Fatalf("writing round-trip file: %v", err)
		}
	}
	loader2, err := lint.NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	res2, err := lint.Run(loader2, []string{tmp}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run (round trip): %v", err)
	}
	for _, te := range res2.TypeErrors {
		t.Errorf("fixed code must compile: %v", te)
	}
	for _, d := range res2.Diagnostics {
		t.Errorf("fixed code must lint clean: %s", d.String())
	}
}

func TestSpanendFixRoundTrip(t *testing.T)   { runFixCorpus(t, "spanend", 2) }
func TestCloseleakFixRoundTrip(t *testing.T) { runFixCorpus(t, "closeleak", 2) }
func TestErrwrapFixRoundTrip(t *testing.T)   { runFixCorpus(t, "errwrap", 2) }
