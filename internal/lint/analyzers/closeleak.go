package analyzers

import (
	"go/ast"
	"go/types"

	"statcube/internal/lint"
)

// closeleak: OS-level resources — files (os.Open/Create/OpenFile/
// CreateTemp, the snapshot store's temp-file pattern), network
// listeners/conns (net.Listen/Dial) and HTTP response bodies (http.Get
// and friends, (*http.Client).Do) — must be closed on every path, or
// handed off. File descriptors are the one resource the Go runtime will
// not reclaim promptly for us; the snapshot store and statload harness
// both open files in loops, where a leaked-on-early-return descriptor
// becomes an EMFILE under sustained load. The suggested fix inserts the
// idiomatic `defer f.Close()` (or `defer resp.Body.Close()`) after the
// acquisition's error check.
func newCloseleak() *lint.Analyzer {
	return newLeakAnalyzer(&leakSpec{
		name:    "closeleak",
		doc:     "files, conns and response bodies must be closed (or handed off) on every path",
		acquire: closeAcquire,
		release: closeRelease,
	})
}

func closeAcquire(pass *lint.Pass, stmt ast.Node, list []ast.Stmt, idx int) []acqSite {
	call := singleCall(stmt)
	if call == nil {
		return nil
	}
	kind := closerKind(pass.Info, call)
	if kind == "" {
		return nil
	}
	fact := leakFact{pos: call.Pos()}
	var name string
	if res, errObj, ok := acquireBinding(pass.Info, stmt, call); ok {
		fact.errObj = errObj
		if res == nil {
			if !blankResult(stmt) {
				return nil // stored into a field/map: ownership handed off
			}
		} else {
			fact.obj = res
			name = res.Name()
		}
	}
	site := acqSite{fact: fact, desc: kind}
	if name != "" {
		deferText := "defer " + name + ".Close()"
		if kind == "http response" {
			deferText = "defer " + name + ".Body.Close()"
		}
		site.fix = deferInsertionFix(pass, stmt.(ast.Stmt), list, idx, fact.errObj, deferText)
	}
	return []acqSite{site}
}

// closeRelease recognizes X.Close() — keyed on X's object — and
// resp.Body.Close(), keyed on resp, so a response fact is released by
// closing its body.
func closeRelease(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "Close" || !isMethod(f) {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, true
	}
	recv := ast.Unparen(sel.X)
	if inner, ok := recv.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
		if o := exprObj(info, inner.X); o != nil {
			return o, false
		}
	}
	if o := exprObj(info, recv); o != nil {
		return o, false
	}
	return nil, true // Close on an unresolvable receiver: covers everything
}

// closerKind classifies an acquisition call, returning a human label or
// "" when the call does not acquire a tracked resource.
func closerKind(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if isMethod(f) {
		if f.Pkg().Path() == "net/http" && f.Name() == "Do" && recvTypeName(f) == "Client" {
			return "http response"
		}
		return ""
	}
	switch f.Pkg().Path() {
	case "os":
		switch f.Name() {
		case "Open", "Create", "OpenFile", "CreateTemp":
			return "file (os." + f.Name() + ")"
		}
	case "net":
		switch f.Name() {
		case "Listen", "Dial":
			return "net conn (net." + f.Name() + ")"
		}
	case "net/http":
		switch f.Name() {
		case "Get", "Head", "Post", "PostForm":
			return "http response"
		}
	}
	return ""
}
