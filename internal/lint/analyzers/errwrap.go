package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"statcube/internal/lint"
)

// newErrwrap enforces the error taxonomy PR 3 built: sentinel errors
// (budget.ErrCanceled, context.Canceled, io.EOF, …) are matched with
// errors.Is, never ==/!=, because the engine deliberately wraps them
// (budget's cancelErr carries both ErrCanceled and the context error);
// and fmt.Errorf that carries an error must use %w so the chain stays
// matchable upstream. Three checks:
//
//   - binary ==/!= where both operands are errors (nil comparisons stay
//     legal) — identity comparison breaks on any wrapped error;
//   - switch statements whose tag is an error with error-typed cases —
//     the same comparison in disguise;
//   - fmt.Errorf with an error argument and no %w verb — the error's
//     identity is flattened into text and errors.Is stops working.
func newErrwrap() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "errwrap",
		Doc:  "compare sentinel errors with errors.Is and wrap causes with %w, never ==/!= or %v",
	}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					// An `Is(error) bool` method is the errors.Is
					// protocol itself: identity comparison against the
					// sentinel it advertises is the correct contract
					// there, so comparisons inside it are exempt (the
					// other checks still apply).
					if isErrorsIsMethod(pass.Info, n) {
						walkWithoutCompareCheck(pass, n)
						return false
					}
				case *ast.BinaryExpr:
					checkErrCompare(pass, n)
				case *ast.SwitchStmt:
					checkErrSwitch(pass, n)
				case *ast.CallExpr:
					checkErrorfWrap(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isErrorsIsMethod reports whether fd is a method `Is(error) bool` — the
// hook errors.Is consults on wrapped errors.
func isErrorsIsMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isErrorType(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// walkWithoutCompareCheck applies every errwrap check except the
// ==-comparison one to the subtree.
func walkWithoutCompareCheck(pass *lint.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			checkErrSwitch(pass, n)
		case *ast.CallExpr:
			checkErrorfWrap(pass, n)
		}
		return true
	})
}

func checkErrCompare(pass *lint.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isUntypedNil(pass.Info, b.X) || isUntypedNil(pass.Info, b.Y) {
		return // err == nil / err != nil is the idiom, not a finding
	}
	xt, yt := pass.Info.Types[b.X], pass.Info.Types[b.Y]
	if isErrorType(xt.Type) && isErrorType(yt.Type) {
		pass.ReportFix(b.OpPos, errorsIsFix(pass, b),
			"errors compared with %s: use errors.Is so wrapped sentinels still match", b.Op)
	}
}

// errorsIsFix rewrites `x == y` to `errors.Is(x, y)` (and != to its
// negation) as a textual edit, adding the errors import when the file
// lacks it. Nil when the source bytes are unavailable or the file has no
// parenthesized import block to extend.
func errorsIsFix(pass *lint.Pass, b *ast.BinaryExpr) *lint.Fix {
	pos := pass.Fset.Position(b.Pos())
	end := pass.Fset.Position(b.End())
	src := pass.Src[pos.Filename]
	if src == nil || pos.Filename != end.Filename {
		return nil
	}
	xText := string(src[pass.Fset.Position(b.X.Pos()).Offset:pass.Fset.Position(b.X.End()).Offset])
	yText := string(src[pass.Fset.Position(b.Y.Pos()).Offset:pass.Fset.Position(b.Y.End()).Offset])
	neg := ""
	if b.Op == token.NEQ {
		neg = "!"
	}
	fix := &lint.Fix{
		Message: "rewrite with errors.Is",
		Edits: []lint.TextEdit{{
			File:  pos.Filename,
			Start: pos.Offset,
			End:   end.Offset,
			New:   neg + "errors.Is(" + xText + ", " + yText + ")",
		}},
	}
	if imp := errorsImportEdit(pass, pos.Filename); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	} else if !fileImports(pass, pos.Filename, "errors") {
		return nil // no import block to extend and errors not imported: skip
	}
	return fix
}

// fileImports reports whether the file at filename imports the given
// path.
func fileImports(pass *lint.Pass, filename, path string) bool {
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
				return true
			}
		}
	}
	return false
}

// errorsImportEdit builds the sorted insertion of `"errors"` into the
// file's first parenthesized import block, or nil when the import is
// already present or no such block exists.
func errorsImportEdit(pass *lint.Pass, filename string) *lint.TextEdit {
	if fileImports(pass, filename, "errors") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
				continue
			}
			// Insert before the first existing import that sorts after
			// "errors" (text lands at that spec's start, pushing it down);
			// before the closing paren otherwise.
			for _, spec := range gd.Specs {
				is := spec.(*ast.ImportSpec)
				if p, err := strconv.Unquote(is.Path.Value); err == nil && p > "errors" {
					off := pass.Fset.Position(is.Pos()).Offset
					return &lint.TextEdit{File: filename, Start: off, End: off, New: "\"errors\"\n\t"}
				}
			}
			off := pass.Fset.Position(gd.Rparen).Offset
			return &lint.TextEdit{File: filename, Start: off, End: off, New: "\t\"errors\"\n"}
		}
	}
	return nil
}

func checkErrSwitch(pass *lint.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[s.Tag]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isUntypedNil(pass.Info, e) {
				continue
			}
			if et, ok := pass.Info.Types[e]; ok && isErrorType(et.Type) {
				pass.Reportf(e.Pos(), "switch compares errors by identity: use errors.Is so wrapped sentinels still match")
			}
		}
	}
}

func checkErrorfWrap(pass *lint.Pass, call *ast.CallExpr) {
	if !calleeFromPkg(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // non-literal format: out of static reach
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if tv, ok := pass.Info.Types[arg]; ok && isErrorType(tv.Type) {
			pass.Reportf(arg.Pos(), "error formatted without %%w: the cause is flattened to text and errors.Is can no longer match it")
			return // one finding per call is enough
		}
	}
}
