// Package analyzers holds the engine's rule set for the statlint driver
// (internal/lint): seven syntactic analyzers encoding the conventions
// PRs 1–5 introduced and nothing previously enforced, plus four
// path-sensitive ones (ledgerleak, spanend, closeleak, errdrop) built
// on internal/lint/cfg + dataflow that prove acquire/release pairing on
// every control-flow path. Each analyzer documents its rule in Doc;
// DESIGN.md §"Static analysis" records the rationale, the CFG/dataflow
// design and the suppression policy.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"statcube/internal/lint"
)

// All returns a fresh analyzer set. Fresh matters: metricname keeps a
// cross-package uniqueness ledger in its closure, so a set must not be
// shared between driver runs.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		newCtxpoll(),
		newCtxfirst(),
		newNakedgoroutine(),
		newErrwrap(),
		newMetricname(),
		newNodeterm(),
		newRecoverboundary(),
		newLedgerleak(),
		newSpanend(),
		newCloseleak(),
		newErrdrop(),
	}
}

// ByName returns the analyzer with the given name from a fresh set, or
// nil when unknown.
func ByName(name string) *lint.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// errorType is the universe error interface, for Implements checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (so sentinel values,
// wrapped errors and concrete error types all count).
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// isUntypedNil reports whether the expression is the predeclared nil.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions and
// calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isMethod reports whether f has a receiver.
func isMethod(f *types.Func) bool {
	return f.Type().(*types.Signature).Recv() != nil
}

// calleeFromPkg reports whether the call invokes the named package-level
// function of the package whose import path has the given suffix.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pathSuffix, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Name() != name {
		return false
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return false
	}
	return pathHasSuffix(f.Pkg().Path(), pathSuffix)
}

// pathHasSuffix reports whether an import path equals suffix or ends with
// "/"+suffix — so "internal/obs" matches both the real package and a
// testdata corpus nested under the analyzer tests.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
