package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"statcube/internal/lint"
)

// metricNameRE is the obs namespace grammar: lowercase dotted segments,
// at least two deep ("layer.metric"), digits and underscores allowed
// after the leading letter of each segment.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// newMetricname polices the obs namespace the bench-regression gate
// diffs: every Registry.Counter/Gauge/Histogram registration and every
// obs.Add/Inc/SetGauge/Observe/ObserveDuration recording must pass a
// literal, lowercase dotted name, and a registration's name must be
// unique across the repo (one kind, one site). Dynamic names are
// unbounded cardinality — snapshots, /metrics output and
// BENCH_BASELINE.json diffs all assume a fixed, stable name set — and a
// name registered twice (or as two kinds) splits one logical metric
// into aliased instruments.
//
// The uniqueness ledger lives in the analyzer's closure and spans the
// whole driver run; the driver visits packages in sorted import-path
// order, so the "first registered at" site is deterministic.
func newMetricname() *lint.Analyzer {
	type site struct {
		kind string
		pos  token.Position
	}
	registered := map[string]site{}

	a := &lint.Analyzer{
		Name: "metricname",
		Doc:  "obs metric names must be literal, lowercase dotted, and registered at exactly one site repo-wide",
	}
	a.Run = func(pass *lint.Pass) error {
		if pathHasSuffix(pass.ImportPath, "internal/obs") {
			return nil // the registry's own implementation and helpers
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				kind, registering := metricCallKind(pass.Info, call)
				if kind == "" {
					return true
				}
				name, ok := literalString(pass.Info, call.Args[0])
				if !ok {
					pass.Reportf(call.Args[0].Pos(),
						"obs %s name must be a literal string: dynamic names have unbounded cardinality and break baseline diffs", kind)
					return true
				}
				if !metricNameRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(),
						"obs %s name %q must be lowercase dotted (e.g. \"layer.metric_name\")", kind, name)
					return true
				}
				if !registering {
					return true
				}
				if prev, dup := registered[name]; dup {
					if prev.kind != kind {
						pass.Reportf(call.Args[0].Pos(),
							"metric %q registered as %s but already registered as %s at %s", name, kind, prev.kind, prev.pos)
					} else {
						pass.Reportf(call.Args[0].Pos(),
							"metric %q already registered at %s: register once and share the instrument", name, prev.pos)
					}
					return true
				}
				registered[name] = site{kind: kind, pos: pass.Fset.Position(call.Args[0].Pos())}
				return true
			})
		}
		return nil
	}
	return a
}

// metricCallKind classifies a call as an obs metric touchpoint. It
// returns the instrument kind ("counter", "gauge", "histogram") and
// whether the call registers (Registry methods) or merely records
// (package-level helpers); kind "" means not a metric call.
func metricCallKind(info *types.Info, call *ast.CallExpr) (kind string, registering bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || !pathHasSuffix(f.Pkg().Path(), "internal/obs") {
		return "", false
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Registry" {
			return "", false
		}
		switch f.Name() {
		case "Counter":
			return "counter", true
		case "Gauge":
			return "gauge", true
		case "Histogram":
			return "histogram", true
		}
		return "", false
	}
	switch f.Name() {
	case "Add", "Inc":
		return "counter", false
	case "SetGauge":
		return "gauge", false
	case "Observe", "ObserveDuration":
		return "histogram", false
	}
	return "", false
}

// literalString evaluates a string literal or a constant expression that
// folds to a string (a named const is fine — it is still one static
// name); anything runtime-dependent reports ok=false.
func literalString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
