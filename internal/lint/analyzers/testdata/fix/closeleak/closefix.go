// Package closefix is the autofix corpus for closeleak: the inserted
// defer lands after the acquisition's adjacent error check, so the
// failure path (nil handle) never runs it.
package closefix

import (
	"errors"
	"net/http"
	"os"
)

func name(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

func ping(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errors.New("statlint fixdata: bad status")
	}
	return nil
}
