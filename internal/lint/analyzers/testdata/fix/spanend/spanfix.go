// Package spanfix is the autofix corpus for spanend: every finding
// carries a defer-insertion fix, applying the fixes must reproduce the
// .golden file byte for byte, and the fixed file must type-check and
// lint clean.
package spanfix

import "statcube/internal/obs"

func scan() {
	sp := obs.NewSpan("statlint.fixdata.scan")
	sp.AddInt("rows", 42)
}

func merge() {
	sp := obs.NewSpan("statlint.fixdata.merge")
	defer sp.End()
	child := sp.Child("statlint.fixdata.merge.sort")
	child.SetStr("phase", "sort")
}
