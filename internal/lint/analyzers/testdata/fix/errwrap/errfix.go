// Package errfix is the autofix corpus for errwrap's errors.Is rewrite:
// both comparisons rewrite in one -fix pass and share a single inserted
// "errors" import (the duplicate import edit deduplicates).
package errfix

import (
	"io"
)

func atEOF(err error) bool {
	return err == io.EOF
}

func pastEOF(err error) bool {
	return err != io.EOF
}
