// Package spanend is the want/nowant corpus for the spanend analyzer:
// obs spans ended (or handed off) on every path — straight-line,
// branch, loop, defer and early-return shapes.
package spanend

import (
	"statcube/internal/obs"
)

func work() bool { return true }

// --- straight-line ---

func LeakStraight() {
	sp := obs.NewSpan("corpus.straight") // want "not released on every path"
	work()
	sp.AddInt("cells", 1) // receiver use: not a hand-off
}

func BalancedStraight() {
	sp := obs.NewSpan("corpus.balanced")
	work()
	sp.End()
}

func DeferredEnd() {
	sp := obs.NewSpan("corpus.deferred")
	defer sp.End()
	work()
}

// --- child spans ---

func LeakChild(parent *obs.Span) {
	child := parent.Child("corpus.child") // want "not released on every path"
	work()
	child.SetStr("phase", "scan") // receiver use: not a hand-off
}

func BalancedChild(parent *obs.Span) {
	child := parent.Child("corpus.child_ok")
	defer child.End()
	work()
}

// --- branch / early return ---

func LeakEarlyReturn(flag bool) {
	sp := obs.NewSpan("corpus.early") // want "not released on every path"
	if flag {
		return // span never ended on this path
	}
	sp.End()
}

func BalancedBranches(flag bool) {
	sp := obs.NewSpan("corpus.branches")
	if flag {
		sp.End()
		return
	}
	sp.End()
}

// --- loop ---

func LoopBalanced(names []string) {
	for range names {
		sp := obs.NewSpan("corpus.loop")
		work()
		sp.End()
	}
}

func LoopLeakOnContinue(names []string) {
	for _, n := range names {
		sp := obs.NewSpan("corpus.loop_leak") // want "not released on every path"
		if n == "" {
			continue // span abandoned for this iteration
		}
		sp.End()
	}
}

// --- hand-off ---

func HandoffReturn() *obs.Span {
	sp := obs.NewSpan("corpus.handoff")
	work()
	return sp // caller owns the span now
}

func HandoffArg(sink func(*obs.Span)) {
	sp := obs.NewSpan("corpus.handoff_arg")
	sink(sp)
}

func HandoffCapture() func() {
	sp := obs.NewSpan("corpus.handoff_capture")
	return func() {
		sp.End()
	}
}

// --- terminating paths are exempt ---

func PanicPathExempt(flag bool) {
	sp := obs.NewSpan("corpus.panic")
	if flag {
		panic("invariant broken")
	}
	sp.End()
}

// --- suppression still applies ---

func SuppressedLeak() {
	//lint:ignore spanend ended by the flight recorder's drain
	sp := obs.NewSpan("corpus.suppressed")
	work()
	sp.AddInt("cells", 1)
}
