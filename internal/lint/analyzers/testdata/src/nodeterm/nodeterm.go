// Package nodeterm is the want/nowant corpus for the nodeterm analyzer:
// no wall-clock reads or global rand in deterministic internal/ paths.
package nodeterm

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock in a counter path.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic counter path"
}

// Elapsed derives a value from the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in a deterministic counter path"
}

// Roll uses the global generator, randomly seeded since Go 1.20.
func Roll() int {
	return rand.Intn(6) // want "global rand.Intn is nondeterministically seeded"
}

// SeededRoll is the engine idiom: an explicit seeded source reproduces.
func SeededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Format only renders a caller-supplied time: not a clock read.
func Format(t time.Time) string { return t.Format(time.RFC3339) }

// Suppressed shows the sanctioned escape hatch for latency probes.
func Suppressed() int64 {
	//lint:ignore nodeterm corpus latency probe feeding no diffed counter
	return time.Now().UnixNano()
}
