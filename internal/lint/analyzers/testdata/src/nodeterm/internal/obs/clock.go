// Package obs stands in for the engine's observability layer: its import
// path ends in internal/obs, so the nodeterm analyzer exempts it —
// measuring wall-clock latency is its job.
package obs

import "time"

// Stamp reads the wall clock; no want expected here.
func Stamp() time.Time { return time.Now() }
