// Package parallel stands in for the engine's fan-out layer: its import
// path ends in internal/parallel, so the nakedgoroutine analyzer exempts
// it — this is where goroutines are allowed to be born.
package parallel

// Spawn runs fn on its own goroutine and waits; no want expected here.
func Spawn(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
