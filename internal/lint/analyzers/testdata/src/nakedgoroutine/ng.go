// Package nakedgoroutine is the want/nowant corpus for the
// nakedgoroutine analyzer: no raw go statements outside the fan-out and
// observability layers.
package nakedgoroutine

// Launch spawns outside internal/parallel: unaccounted concurrency.
func Launch(fn func()) {
	go fn() // want "naked goroutine"
}

// LaunchClosure is the same violation dressed as a closure.
func LaunchClosure(done chan<- struct{}) {
	go func() { // want "naked goroutine"
		close(done)
	}()
}

// Sequential stays on the calling goroutine: clean.
func Sequential(fn func()) { fn() }
