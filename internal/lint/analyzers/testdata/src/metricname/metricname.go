// Package metricname is the want/nowant corpus for the metricname
// analyzer: literal, lowercase dotted, uniquely registered obs names.
package metricname

import "statcube/internal/obs"

// Registrations: one site per name, literal, lowercase dotted.
var (
	good     = obs.Default().Counter("corpus.good_counter")
	badCase  = obs.Default().Counter("Corpus.BadCase")        // want "must be lowercase dotted"
	flatName = obs.Default().Gauge("flat")                    // want "must be lowercase dotted"
	dupSite  = obs.Default().Counter("corpus.good_counter")   // want "already registered at"
	dupKind  = obs.Default().Histogram("corpus.good_counter") // want "already registered as counter"
)

// Dynamic builds a name at runtime: unbounded cardinality.
func Dynamic(name string) *obs.Counter {
	return obs.Default().Counter("corpus.dyn." + name) // want "must be a literal string"
}

// Record exercises the package-level recording helpers: names must be
// literal and well-formed, but recording an existing name is normal use.
func Record() {
	good.Inc()
	obs.Inc("corpus.recorded_ok")
	obs.Inc("corpus.good_counter") // recording a registered name: fine
	obs.SetGauge("NOPE", 1)        // want "must be lowercase dotted"
}

var _ = []any{badCase, flatName, dupSite, dupKind}
