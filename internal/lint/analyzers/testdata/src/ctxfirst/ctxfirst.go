// Package ctxfirst is the want/nowant corpus for the ctxfirst analyzer:
// context.Context first in every parameter list, never in a struct.
package ctxfirst

import "context"

// Lookup takes ctx in second position.
func Lookup(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	return ctx.Err()
}

// LookupOK is the required shape.
func LookupOK(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// lookupLit checks function literals too.
var lookupLit = func(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	return ctx.Err()
}

// Job smuggles a context past its request's lifetime.
type Job struct {
	Name string
	ctx  context.Context // want "context.Context stored in a struct field"
}

// Run keeps the stored context in use so the field is not dead code.
func (j *Job) Run() error { return j.ctx.Err() }

// amortizer demonstrates the sanctioned escape hatch: a suppressed,
// reasoned exception in the style of budget.Ticker.
type amortizer struct {
	//lint:ignore ctxfirst loop-local poll amortizer created and dropped inside one call frame
	ctx context.Context
}

func (a *amortizer) Tick() error { return a.ctx.Err() }

// Doer propagates the rule into interface method signatures.
type Doer interface {
	Do(id int, ctx context.Context) error // want "context.Context must be the first parameter"
	DoOK(ctx context.Context, id int) error
}
