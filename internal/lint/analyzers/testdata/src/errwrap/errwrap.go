// Package errwrap is the want/nowant corpus for the errwrap analyzer:
// errors.Is over identity, %w over %v.
package errwrap

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// ErrMissing is this corpus's sentinel.
var ErrMissing = errors.New("missing")

// CompareEq matches a sentinel by identity; wrapped EOFs slip through.
func CompareEq(err error) bool {
	return err == io.EOF // want "errors compared with =="
}

// CompareNeq is the inverted form of the same bug, against the context
// sentinel the engine always wraps (budget.cancelErr).
func CompareNeq(err error) bool {
	return err != context.Canceled // want "errors compared with !="
}

// CompareOK uses errors.Is, and nil comparison stays the idiom.
func CompareOK(err error) bool {
	return err != nil && errors.Is(err, ErrMissing)
}

// Classify compares by identity through a switch.
func Classify(err error) string {
	switch err {
	case nil:
		return "ok"
	case io.EOF: // want "switch compares errors by identity"
		return "eof"
	default:
		return "other"
	}
}

// Wrap flattens the cause to text; errors.Is can no longer match it.
func Wrap(err error) error {
	return fmt.Errorf("loading: %v", err) // want "error formatted without %w"
}

// WrapOK keeps the chain intact.
func WrapOK(err error) error {
	return fmt.Errorf("loading: %w", err)
}

// WrapNoErr formats no error at all: out of scope.
func WrapNoErr(n int) error {
	return fmt.Errorf("loading row %d", n)
}

// sentinelErr implements the errors.Is protocol; the identity comparison
// inside Is is the contract, not a finding.
type sentinelErr struct{}

func (sentinelErr) Error() string { return "sentinel" }

func (sentinelErr) Is(target error) bool { return target == ErrMissing }
