// Package closeleak is the want/nowant corpus for the closeleak
// analyzer: files, net conns and HTTP response bodies closed (or handed
// off) on every path — straight-line, branch, loop, defer and
// early-return shapes.
package closeleak

import (
	"errors"
	"net"
	"net/http"
	"os"
)

func work() bool { return true }

// --- straight-line ---

func DiscardedOpen(path string) {
	os.Open(path) // want "not released on every path"
}

func BalancedStraight(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	work()
	return f.Close()
}

func DeferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	work()
	return nil
}

// --- branch / early return ---

func LeakEarlyReturn(path string, flag bool) error {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return err
	}
	if flag {
		return nil // descriptor leaked on this path
	}
	return f.Close()
}

func BalancedBranches(path string, flag bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if flag {
		f.Close()
		return nil
	}
	return f.Close()
}

// --- http response bodies ---

func LeakRespOnStatus(url string) error {
	resp, err := http.Get(url) // want "not released on every path"
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errors.New("bad status") // body never closed here
	}
	resp.Body.Close()
	return nil
}

func BalancedResp(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	work()
	return nil
}

// --- net conns ---

func LeakConn(addr string, flag bool) error {
	conn, err := net.Dial("tcp", addr) // want "not released on every path"
	if err != nil {
		return err
	}
	if flag {
		return nil
	}
	return conn.Close()
}

func BalancedListener(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	work()
	return nil
}

// --- loop ---

func LoopLeakOnBreak(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p) // want "not released on every path"
		if err != nil {
			continue
		}
		if work() {
			break // f leaked when leaving the loop early
		}
		f.Close()
	}
}

func LoopBalanced(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		work()
		f.Close()
	}
}

// --- receiver-position use is not a hand-off ---

func LeakReceiverUse(path string) (string, error) {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return "", err
	}
	return f.Name(), nil // reads a property of f; f itself never closed
}

// --- hand-off ---

func HandoffReturn(dir string) (*os.File, error) {
	tmp, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return nil, err
	}
	return tmp, nil // caller owns the temp file
}

func HandoffClosure(path string) (func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f.Close, nil // cleanup closure owns the descriptor
}

func HandoffField(s *struct{ f *os.File }, path string) error {
	var err error
	s.f, err = os.Open(path) // stored away: the struct owns it
	return err
}

// --- terminating paths are exempt ---

func PanicPathExempt(path string, flag bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if flag {
		panic("invariant broken")
	}
	return f.Close()
}

// --- suppression still applies ---

func SuppressedLeak(path string) {
	//lint:ignore closeleak closed by the harness teardown
	os.Open(path)
}
