// Package recoverboundary is the want/nowant corpus for the
// recoverboundary analyzer: recover() only at sanctioned panic
// boundaries.
package recoverboundary

// Swallow recovers in an engine package: a panic here should have
// crossed the worker boundary and become ErrWorkerPanic instead.
func Swallow(fn func()) (err error) {
	defer func() {
		if recover() != nil { // want "recover\(\) outside a sanctioned boundary"
			err = nil
		}
	}()
	fn()
	return nil
}

// SwallowBare is the same violation without the defer dressing.
func SwallowBare() any {
	return recover() // want "recover\(\) outside a sanctioned boundary"
}

// Shadowed calls a local function that happens to be named recover —
// not the builtin, so clean.
func Shadowed() any {
	recover := func() any { return nil }
	return recover()
}

// Propagate lets panics fly to the boundary: clean.
func Propagate(fn func()) { fn() }
