// Package main mirrors a CLI entry point: cmd/ packages own their
// process lifecycle, so recovering to pick an exit code is clean.
package main

func main() {
	defer func() {
		_ = recover()
	}()
}
