// Package parallel mirrors the sanctioned worker-loop boundary: the one
// engine location where recover() is the rule, not the violation.
package parallel

// RunTask contains a worker panic at the boundary — clean here, and
// only here, inside internal/.
func RunTask(task func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = nil // the real loop wraps v into ErrWorkerPanic
		}
	}()
	task()
	return nil
}
