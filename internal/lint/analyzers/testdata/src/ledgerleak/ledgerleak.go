// Package ledgerleak is the want/nowant corpus for the ledgerleak
// analyzer: every Governor.Reserve balanced by Release or a hand-off on
// every path — straight-line, branch, loop, defer and early-return
// shapes.
package ledgerleak

import (
	"statcube/internal/budget"
)

func work() bool { return true }

// ledger stands in for the accountant pattern: a struct that takes over
// a reservation's lifetime.
type ledger struct{ total int64 }

func (l *ledger) add(n int64) { l.total += n }

// --- straight-line ---

func LeakStraight(g *budget.Governor) {
	_ = g.Reserve(64) // want "not released on every path"
	work()
}

func BalancedStraight(g *budget.Governor) {
	if err := g.Reserve(64); err != nil {
		return
	}
	work()
	g.Release(64)
}

// --- branch / early return ---

func LeakEarlyReturn(g *budget.Governor, flag bool) {
	if err := g.Reserve(64); err != nil { // want "not released on every path"
		return
	}
	if flag {
		return // holds the reservation out of the function
	}
	g.Release(64)
}

func BalancedBothBranches(g *budget.Governor, flag bool) {
	if err := g.Reserve(64); err != nil {
		return
	}
	if flag {
		g.Release(64)
		return
	}
	g.Release(64)
}

// --- defer ---

func DeferRelease(g *budget.Governor, flag bool) {
	if err := g.Reserve(64); err != nil {
		return
	}
	defer g.Release(64)
	if flag {
		return // covered: the defer runs on this path too
	}
	work()
}

func DeferClosureRelease(g *budget.Governor) {
	if err := g.Reserve(64); err != nil {
		return
	}
	defer func() {
		g.Release(64)
	}()
	work()
}

// --- loop ---

func LoopBalanced(g *budget.Governor, sizes []int64) {
	for _, n := range sizes {
		if err := g.Reserve(n); err != nil {
			continue
		}
		work()
		g.Release(n)
	}
}

func LoopLeakOnBreak(g *budget.Governor, sizes []int64) {
	for _, n := range sizes {
		if err := g.Reserve(n); err != nil { // want "not released on every path"
			return
		}
		if n > 10 {
			break // leaves the loop holding the reservation
		}
		g.Release(n)
	}
}

// --- hand-off ---

func HandoffAmount(g *budget.Governor, l *ledger, n int64) error {
	if err := g.Reserve(n); err != nil {
		return err
	}
	l.add(n) // the ledger owns the reservation now; its close releases wholesale
	return nil
}

func HandoffClosure(g *budget.Governor) func() {
	if err := g.Reserve(64); err != nil {
		return func() {}
	}
	return func() {
		g.Release(64) // caller-run release: capturing g hands it off
	}
}

// --- terminating paths are exempt ---

func PanicPathExempt(g *budget.Governor, flag bool) {
	if err := g.Reserve(64); err != nil {
		return
	}
	if flag {
		panic("invariant broken") // process unwinds; not a leak path
	}
	g.Release(64)
}

// --- suppression still applies ---

func SuppressedLeak(g *budget.Governor) {
	//lint:ignore ledgerleak released by the test's cleanup hook
	_ = g.Reserve(64)
	work()
}
