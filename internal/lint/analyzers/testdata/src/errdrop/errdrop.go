// Package errdrop is the want/nowant corpus for the errdrop analyzer:
// error results from calls must be checked, propagated, captured or
// explicitly discarded before they are overwritten or go out of scope —
// straight-line, branch, loop, defer and early-return shapes.
package errdrop

import (
	"errors"
	"fmt"
)

func step() error  { return nil }
func step2() error { return nil }
func fetch() (int, error) {
	return 0, nil
}

// --- straight-line ---

func TailDrop() {
	err := step()
	if err != nil {
		return
	}
	err = step2() // want "never checked"
}

func Checked() error {
	err := step()
	if err != nil {
		return err
	}
	return nil
}

func ExplicitDiscard() {
	err := step()
	_ = err // reasoned discard: the read is the acknowledgment
}

// --- overwrite before check ---

func Overwritten() error {
	err := step() // want "overwritten before being checked"
	err = step2()
	return err
}

func OverwrittenMulti() error {
	_, err := fetch() // want "overwritten before being checked"
	_, err = fetch()
	return err
}

// --- branch / early return ---

func BranchDrop(flag bool) {
	err := step()
	if err != nil {
		return
	}
	if flag {
		err = step2() // want "never checked"
		return
	}
	err = step2()
	_ = err
}

func BranchChecked(flag bool) error {
	err := step()
	if flag {
		return fmt.Errorf("wrapping: %w", err) // wrap counts as a read
	}
	return err
}

// --- loop ---

func LoopLastWins(xs []int) error {
	var err error
	for range xs {
		err = step() // same site each iteration: last-error-wins, then read
	}
	return err
}

func LoopDrop(xs []int) {
	err := step()
	if err != nil {
		return
	}
	for _, x := range xs {
		if x > 0 {
			err = step2() // want "never checked"
		}
	}
}

func LoopCheckedOnSomePath(xs []int) {
	// Read on the normal path, deliberately skipped on continue: a check,
	// not a drop.
	var err error
	for _, x := range xs {
		err = step()
		if x > 0 {
			continue
		}
		if err != nil {
			return
		}
	}
}

// --- propagation forms that count as reads ---

func SentinelCheck() bool {
	err := step()
	return errors.Is(err, errors.New("x"))
}

func CapturedByClosure() func() error {
	err := step()
	return func() error { return err } // capture is a read
}

func NakedReturnNamed() (err error) {
	err = step()
	return // naked return reads the named result
}

// --- idioms that must stay clean ---

func FirstErrorWins() error {
	// serveErr is read only when err == nil; dropping it otherwise is the
	// idiomatic first-error-wins merge, not a missed check.
	err := step()
	if serveErr := step2(); err == nil {
		err = serveErr
	}
	return err
}

func ClosureAccumulator(each func(func(int) bool)) error {
	// walkErr is assigned inside the callback but read by the enclosing
	// function; the closure's own analysis must not claim it is dropped.
	var walkErr error
	each(func(x int) bool {
		if x < 0 {
			walkErr = step()
			return false
		}
		return true
	})
	return walkErr
}

// --- terminating paths are exempt ---

func PanicPath(flag bool) {
	err := step()
	if flag {
		panic("fatal") // err is moot on a terminating path
	}
	_ = err
}

// --- suppression still applies ---

func Suppressed() {
	err := step()
	if err != nil {
		return
	}
	//lint:ignore errdrop best-effort cleanup, failure is acceptable here
	err = step2()
}
