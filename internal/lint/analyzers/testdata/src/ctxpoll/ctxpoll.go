// Package ctxpoll is the want/nowant corpus for the ctxpoll analyzer:
// exported …Ctx functions that loop must poll or delegate their context.
package ctxpoll

import "context"

// SumRowsCtx loops over rows and never consults ctx: uncancellable.
func SumRowsCtx(ctx context.Context, rows []float64) float64 { // want "never polls or delegates its context"
	var s float64
	for _, r := range rows {
		s += r
	}
	return s
}

// BlankCtx discards the context by name and still loops.
func BlankCtx(_ context.Context, rows []int) int { // want "never polls or delegates its context"
	n := 0
	for range rows {
		n++
	}
	return n
}

// PollsCtx checks ctx.Err inside the loop: clean.
func PollsCtx(ctx context.Context, rows []float64) (float64, error) {
	var s float64
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += r
	}
	return s, nil
}

// DelegatesCtx forwards ctx to a callee that owns the polling: clean.
func DelegatesCtx(ctx context.Context, chunks [][]float64) (float64, error) {
	var s float64
	for _, c := range chunks {
		v, err := sumChunk(ctx, c)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}

// TicksCtx polls through an amortizing ticker: clean.
func TicksCtx(ctx context.Context, rows []float64) (float64, error) {
	t := newTicker(ctx)
	var s float64
	for _, r := range rows {
		if err := t.Tick(); err != nil {
			return 0, err
		}
		s += r
	}
	return s, nil
}

// NoLoopCtx has no loop, so there is nothing to poll between: clean.
func NoLoopCtx(ctx context.Context) error { return ctx.Err() }

// Total is not Ctx-suffixed; other analyzers own its contract.
func Total(ctx context.Context, rows []float64) float64 {
	var s float64
	for _, r := range rows {
		s += r
	}
	return s
}

// sumCtx is unexported: out of the rule's scope.
func sumCtx(ctx context.Context, rows []float64) float64 {
	var s float64
	for _, r := range rows {
		s += r
	}
	return s
}

func sumChunk(ctx context.Context, c []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var s float64
	for _, v := range c {
		s += v
	}
	return s, nil
}

type ticker struct{ ctx context.Context } //lint:ignore ctxfirst corpus helper mirroring budget.Ticker

func newTicker(ctx context.Context) *ticker { return &ticker{ctx: ctx} }

func (t *ticker) Tick() error { return t.ctx.Err() }
