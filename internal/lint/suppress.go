package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses findings from the named analyzers on exactly one
// line: the line it trails, or — when it stands alone on its line — the
// line immediately below it. It never carries further, so a suppression
// cannot silently swallow the next statement's findings. The reason is
// mandatory; a directive without one is itself reported (analyzer
// "directive") and suppresses nothing.

// directivePrefix is matched after the comment marker is stripped. The
// "lint:" namespace leaves room for future verbs (file-level ignores,
// rule configuration) without breaking this parser.
const directivePrefix = "lint:ignore"

// directive is one parsed lint:ignore comment.
type directive struct {
	file      string   // absolute filename the directive lives in
	line      int      // the single line the directive applies to
	analyzers []string // analyzers the directive covers
}

// covers reports whether the directive names the analyzer.
func (d directive) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseDirectives extracts every lint:ignore directive from the files.
// src maps filename → source bytes (used to decide whether a directive
// trails code or stands alone). Malformed directives — missing analyzer
// list or missing reason — come back as diagnostics so they fail the run
// instead of silently suppressing nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File, src map[string][]byte) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, ok := splitDirective(rest)
				if !ok {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Position: pos,
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				line := pos.Line
				if startsLine(src[pos.Filename], pos) {
					line++ // standalone directive applies to the next line
				}
				dirs = append(dirs, directive{file: pos.Filename, line: line, analyzers: names})
			}
		}
	}
	return dirs, bad
}

// directiveText strips the comment marker and reports whether the comment
// is a lint:ignore directive. Directives must use the // form with no
// space before "lint:" (mirroring go:build and go:generate).
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // /* */ comments are never directives
	}
	return strings.CutPrefix(body, directivePrefix)
}

// splitDirective parses " <a,b> <reason...>" into analyzer names,
// reporting ok=false when the list or the reason is missing or empty.
func splitDirective(rest string) (names []string, ok bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, false // no analyzer list, or no reason
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n == "" {
			return nil, false
		}
		names = append(names, n)
	}
	return names, true
}

// startsLine reports whether only whitespace precedes the comment on its
// source line. With no source available the column is the best signal.
func startsLine(src []byte, pos token.Position) bool {
	if src == nil {
		return pos.Column == 1
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return pos.Column == 1
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// filterSuppressed drops diagnostics covered by a directive on their line
// and returns the kept set in the original order.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	byLine := map[key][]directive{}
	for _, d := range dirs {
		k := key{d.file, d.line}
		byLine[k] = append(byLine[k], d)
	}
	keep := make([]Diagnostic, 0, len(diags))
	for _, diag := range diags {
		suppressed := false
		for _, d := range byLine[key{diag.Position.Filename, diag.Position.Line}] {
			if d.covers(diag.Analyzer) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			keep = append(keep, diag)
		}
	}
	return keep
}
