// Package dataflow runs forward may-analyses over internal/lint/cfg
// graphs: a worklist fixpoint over sets of facts, with per-edge
// refinement so a branch on `err != nil` can kill facts on exactly one
// side of the split. The acquire/release analyzers (ledgerleak, spanend,
// closeleak) and the use-tracking one (errdrop) are all instances of the
// same scheme:
//
//   - a Transfer function folds one node's effect into the fact set
//     (acquisitions add facts, releases and hand-offs kill them);
//   - a Refine function adjusts the set on a condition-labeled edge
//     (a failed acquisition's facts die on the error branch);
//   - the fixpoint unions fact sets at join points — "may", because a
//     resource live on ANY path into a block is a leak candidate there.
//
// Termination: fact universes are finite (keyed by token.Pos and
// types.Object within one function) and in-sets only grow, so the
// worklist drains. Transfer must be deterministic and monotone in the
// obvious sense (adding an input fact never removes an unrelated output
// fact) — the analyzers' add/kill structure satisfies this by
// construction.
//
// After the fixpoint, Result.ReplayBlocks re-runs Transfer once per
// block over the stable in-sets so an analyzer can report findings
// exactly once per program point, independent of how many fixpoint
// iterations visited the block.
package dataflow

import (
	"go/ast"

	"statcube/internal/lint/cfg"
)

// Set is a fact set. Facts must be comparable; analyzers key them by
// acquisition position and bound variable.
type Set[F comparable] map[F]struct{}

// Clone copies the set.
func (s Set[F]) Clone() Set[F] {
	out := make(Set[F], len(s))
	for f := range s {
		out[f] = struct{}{}
	}
	return out
}

// Add inserts a fact.
func (s Set[F]) Add(f F) { s[f] = struct{}{} }

// Delete removes a fact.
func (s Set[F]) Delete(f F) { delete(s, f) }

// Has reports membership.
func (s Set[F]) Has(f F) bool { _, ok := s[f]; return ok }

// union folds src into dst, reporting whether dst grew.
func union[F comparable](dst, src Set[F]) bool {
	grew := false
	for f := range src {
		if _, ok := dst[f]; !ok {
			dst[f] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Problem is one analysis: how facts move through nodes and edges.
type Problem[F comparable] struct {
	// Transfer folds node n's effect into facts, mutating in place.
	// It runs many times during the fixpoint; reporting belongs in the
	// replay pass, not here.
	Transfer func(n ast.Node, facts Set[F])
	// Refine, if non-nil, adjusts facts crossing an edge labeled with
	// condition cond evaluating to val (mutating in place). Typical use:
	// kill acquisitions whose error variable is non-nil on this branch.
	Refine func(cond ast.Expr, val bool, facts Set[F])
}

// Result carries the converged per-block input sets.
type Result[F comparable] struct {
	g  *cfg.Graph
	p  Problem[F]
	in map[*cfg.Block]Set[F]
}

// Forward runs the fixpoint over g and returns the converged result.
func Forward[F comparable](g *cfg.Graph, p Problem[F]) *Result[F] {
	in := make(map[*cfg.Block]Set[F], len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = Set[F]{}
	}
	// Worklist seeded with every block in index order: unreachable
	// blocks converge immediately (empty in-set), reachable ones iterate.
	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := in[b].Clone()
		for _, n := range b.Nodes {
			p.Transfer(n, out)
		}
		for _, e := range b.Succs {
			contrib := out
			if e.Cond != nil && p.Refine != nil {
				contrib = out.Clone()
				p.Refine(e.Cond, e.CondVal, contrib)
			}
			if union(in[e.To], contrib) && !queued[e.To.Index] {
				queued[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}
	return &Result[F]{g: g, p: p, in: in}
}

// In returns the converged fact set flowing into b (shared; do not
// mutate).
func (r *Result[F]) In(b *cfg.Block) Set[F] { return r.in[b] }

// AtExit returns the facts that reach the function's exit block — for a
// leak analysis, the resources still live on some path out of the
// function.
func (r *Result[F]) AtExit() Set[F] { return r.in[r.g.Exit] }

// ReplayBlocks re-runs transfer once per block over the converged
// in-sets, calling visit before each node with the facts live at that
// point. This is the reporting pass: each (block, node) pair is visited
// exactly once, in block-index then node order, so diagnostics are
// deterministic and deduplicated by construction.
func (r *Result[F]) ReplayBlocks(visit func(n ast.Node, before Set[F])) {
	for _, b := range r.g.Blocks {
		facts := r.in[b].Clone()
		for _, n := range b.Nodes {
			visit(n, facts)
			r.p.Transfer(n, facts)
		}
	}
}
