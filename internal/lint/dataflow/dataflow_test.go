package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"statcube/internal/lint/cfg"
)

// The tests run a toy acquire/release analysis over real CFGs: the
// string fact "r" is added by `acq()` calls, removed by `rel()` calls,
// and refined away on the true edge of any condition that is the bare
// ident `failed`.

func buildGraph(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.Build(file.Decls[0].(*ast.FuncDecl))
}

func callName(n ast.Node) string {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

func toyProblem() Problem[string] {
	return Problem[string]{
		Transfer: func(n ast.Node, facts Set[string]) {
			switch callName(n) {
			case "acq":
				facts.Add("r")
			case "rel":
				facts.Delete("r")
			}
		},
		Refine: func(cond ast.Expr, val bool, facts Set[string]) {
			if id, ok := cond.(*ast.Ident); ok && id.Name == "failed" && val {
				facts.Delete("r")
			}
		},
	}
}

func run(t *testing.T, body string) Set[string] {
	t.Helper()
	g := buildGraph(t, body)
	return Forward(g, toyProblem()).AtExit()
}

func TestStraightLineLeak(t *testing.T) {
	if exit := run(t, "acq()"); !exit.Has("r") {
		t.Fatalf("unreleased fact must reach exit, got %v", exit)
	}
}

func TestStraightLineRelease(t *testing.T) {
	if exit := run(t, "acq()\nrel()"); exit.Has("r") {
		t.Fatalf("released fact must not reach exit, got %v", exit)
	}
}

func TestMayAnalysisUnionAtJoin(t *testing.T) {
	// Release on only one branch: the fact survives via the other.
	exit := run(t, "acq()\nif cond {\nrel()\n}\nreturn")
	if !exit.Has("r") {
		t.Fatalf("fact must survive the unreleased branch, got %v", exit)
	}
}

func TestBothBranchesRelease(t *testing.T) {
	exit := run(t, "acq()\nif cond {\nrel()\n} else {\nrel()\n}\nreturn")
	if exit.Has("r") {
		t.Fatalf("fact released on both branches must die, got %v", exit)
	}
}

func TestRefineKillsOnOneEdge(t *testing.T) {
	// `if failed { return }` — refinement kills "r" on the true edge, so
	// the early return carries nothing; the fall-through keeps it.
	g := buildGraph(t, "acq()\nif failed {\nreturn\n}\nrel()")
	exit := Forward(g, toyProblem()).AtExit()
	if exit.Has("r") {
		t.Fatalf("fact must be refined away on the failed edge and released on the other, got %v", exit)
	}
}

func TestRefineOnlyAffectsLabeledEdge(t *testing.T) {
	// Without the release, the false edge still leaks the fact.
	exit := run(t, "acq()\nif failed {\nreturn\n}")
	if !exit.Has("r") {
		t.Fatalf("fall-through edge must keep the fact, got %v", exit)
	}
}

func TestLoopConverges(t *testing.T) {
	// Acquire inside a conditional loop: the fixpoint must terminate and
	// carry the fact out.
	exit := run(t, "for i := 0; i < 3; i++ {\nacq()\n}\nreturn")
	if !exit.Has("r") {
		t.Fatalf("loop-acquired fact must escape the loop, got %v", exit)
	}
}

func TestLoopReleaseEachIteration(t *testing.T) {
	exit := run(t, "for i := 0; i < 3; i++ {\nacq()\nrel()\n}\nreturn")
	if exit.Has("r") {
		t.Fatalf("per-iteration release must keep exit clean, got %v", exit)
	}
}

func TestReplayVisitsEachNodeOnce(t *testing.T) {
	g := buildGraph(t, "acq()\nfor i := 0; i < 3; i++ {\nacq()\n}\nrel()")
	res := Forward(g, toyProblem())
	visits := map[ast.Node]int{}
	res.ReplayBlocks(func(n ast.Node, before Set[string]) {
		visits[n]++
	})
	for n, c := range visits {
		if c != 1 {
			t.Fatalf("node %T visited %d times, want exactly 1", n, c)
		}
	}
	total := 0
	for _, b := range g.Blocks {
		total += len(b.Nodes)
	}
	if len(visits) != total {
		t.Fatalf("replay visited %d nodes, graph has %d", len(visits), total)
	}
}

func TestReplaySeesConvergedFacts(t *testing.T) {
	// At the node after the if-join, the replay's before-set must contain
	// the fact (it survives the no-release branch).
	g := buildGraph(t, "acq()\nif cond {\nrel()\n}\nprobe()")
	res := Forward(g, toyProblem())
	var sawProbe, factAtProbe bool
	res.ReplayBlocks(func(n ast.Node, before Set[string]) {
		if callName(n) == "probe" {
			sawProbe = true
			factAtProbe = before.Has("r")
		}
	})
	if !sawProbe {
		t.Fatalf("probe node not replayed")
	}
	if !factAtProbe {
		t.Fatalf("converged in-set at probe must contain the fact")
	}
}

func TestSetOps(t *testing.T) {
	s := Set[string]{}
	s.Add("a")
	c := s.Clone()
	c.Add("b")
	if s.Has("b") {
		t.Fatalf("clone must not alias the original")
	}
	c.Delete("a")
	if !s.Has("a") || c.Has("a") {
		t.Fatalf("delete leaked across clone")
	}
}

func TestUnreachableBlockStaysEmpty(t *testing.T) {
	// Code after a return is unreachable: facts must not flow into it.
	g := buildGraph(t, "acq()\nreturn\nrel()")
	res := Forward(g, toyProblem())
	if !res.AtExit().Has("r") {
		t.Fatalf("the unreachable rel() must not release anything")
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if callName(n) == "rel" && len(res.In(b)) != 0 {
				t.Fatalf("unreachable block has a non-empty in-set: %v", res.In(b))
			}
		}
	}
}
