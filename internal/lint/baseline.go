package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Baselines (`statlint -baseline=<file>`): adopt the tool on a codebase
// with pre-existing findings by recording them once
// (`-write-baseline`) and failing CI only on NEW findings. Entries are
// keyed WITHOUT line numbers — file, analyzer, message — so unrelated
// edits that shift a finding up or down the file do not resurrect it;
// the key is a multiset, so two identical findings in one file need two
// baseline entries, and fixing one surfaces the other.

// Baseline is a multiset of accepted findings.
type Baseline struct {
	counts map[string]int
	// root makes file keys checkout-independent (module-relative).
	root string
}

// baselineKey is the line-number-free identity of a finding.
func (b *Baseline) baselineKey(d Diagnostic) string {
	file := d.Position.Filename
	if b.root != "" {
		if rel, err := filepath.Rel(b.root, file); err == nil && filepath.IsLocal(rel) {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s: %s (%s)", file, d.Message, d.Analyzer)
}

// baselineLine parses one serialized entry; the format is the key
// itself, so the file stays greppable and diffable.
var baselineLine = regexp.MustCompile(`^(.+): (.+) \(([a-z][a-z0-9]*)\)$`)

// NewBaseline returns an empty baseline for the given module root.
func NewBaseline(root string) *Baseline {
	return &Baseline{counts: map[string]int{}, root: root}
}

// LoadBaseline reads a baseline file written by Write. A missing file is
// an error: silently treating it as empty would turn a typoed path into
// a CI run that fails on every accepted finding.
func LoadBaseline(path, root string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	defer f.Close()
	b := NewBaseline(root)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !baselineLine.MatchString(text) {
			return nil, fmt.Errorf("lint: baseline %s:%d: malformed entry %q", path, line, text)
		}
		b.counts[text]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return b, nil
}

// Filter splits diagnostics into new findings and baseline-matched ones,
// consuming baseline entries as a multiset (the baseline itself is not
// mutated across calls — consumption is per Filter call).
func (b *Baseline) Filter(diags []Diagnostic) (fresh, matched []Diagnostic) {
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, d := range diags {
		key := b.baselineKey(d)
		if remaining[key] > 0 {
			remaining[key]--
			matched = append(matched, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, matched
}

// WriteBaseline serializes the diagnostics as a baseline file: sorted,
// one entry per finding, with a header explaining the contract.
func WriteBaseline(w io.Writer, diags []Diagnostic, root string) error {
	b := NewBaseline(root)
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, b.baselineKey(d))
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintln(w, "# statlint baseline: accepted findings, keyed file/message/analyzer (no line numbers)."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Regenerate with: statlint -write-baseline=<this file> <packages>"); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintln(w, k); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of entries in the baseline.
func (b *Baseline) Size() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}
