package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one in-memory file and returns everything
// parseDirectives needs.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File, map[string][]byte) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}, map[string][]byte{"x.go": []byte(src)}
}

// diagAt fabricates a finding from the named analyzer at a line of x.go.
func diagAt(analyzer string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Position: token.Position{Filename: "x.go", Line: line, Column: 1},
		Message:  "finding",
	}
}

func TestSuppressionSemantics(t *testing.T) {
	// Line numbers below are 1-based within each case's src.
	cases := []struct {
		name string
		src  string
		// diags fabricated per (analyzer, line); keptLines lists which
		// survive filtering, in order.
		diags     []Diagnostic
		keptLines []int
		// wantBad is the number of malformed-directive findings.
		wantBad int
	}{
		{
			name: "trailing directive suppresses its own line",
			src: "package p\n" +
				"var x = 1 //lint:ignore foo covered by spec FOO-7\n",
			diags:     []Diagnostic{diagAt("foo", 2)},
			keptLines: nil,
		},
		{
			name: "standalone directive suppresses the next line only",
			src: "package p\n" +
				"//lint:ignore foo covered by spec FOO-7\n" +
				"var x = 1\n" +
				"var y = 2\n",
			diags:     []Diagnostic{diagAt("foo", 3), diagAt("foo", 4)},
			keptLines: []int{4},
		},
		{
			name: "suppression does not leak past blank lines to later statements",
			src: "package p\n" +
				"//lint:ignore foo covered by spec FOO-7\n" +
				"\n" +
				"var y = 2\n",
			diags:     []Diagnostic{diagAt("foo", 4)},
			keptLines: []int{4},
		},
		{
			name: "directive only covers the analyzers it names",
			src: "package p\n" +
				"var x = 1 //lint:ignore foo covered by spec FOO-7\n",
			diags:     []Diagnostic{diagAt("bar", 2)},
			keptLines: []int{2},
		},
		{
			name: "comma list covers several analyzers",
			src: "package p\n" +
				"var x = 1 //lint:ignore foo,bar covered by spec FOO-7\n",
			diags:     []Diagnostic{diagAt("foo", 2), diagAt("bar", 2), diagAt("baz", 2)},
			keptLines: []int{2},
		},
		{
			name: "missing reason is rejected and suppresses nothing",
			src: "package p\n" +
				"var x = 1 //lint:ignore foo\n",
			diags:     []Diagnostic{diagAt("foo", 2)},
			keptLines: []int{2},
			wantBad:   1,
		},
		{
			name: "empty analyzer in the list is rejected",
			src: "package p\n" +
				"var x = 1 //lint:ignore foo,, some reason\n",
			diags:     []Diagnostic{diagAt("foo", 2)},
			keptLines: []int{2},
			wantBad:   1,
		},
		{
			name: "block comments are never directives",
			src: "package p\n" +
				"var x = 1 /*lint:ignore foo some reason*/\n",
			diags:     []Diagnostic{diagAt("foo", 2)},
			keptLines: []int{2},
		},
		{
			name: "unrelated comments pass through",
			src: "package p\n" +
				"// lint:ignore with a leading space is prose, not a directive\n" +
				"var x = 1\n",
			diags:     []Diagnostic{diagAt("foo", 3)},
			keptLines: []int{3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files, src := parseSrc(t, tc.src)
			dirs, bad := parseDirectives(fset, files, src)
			if len(bad) != tc.wantBad {
				t.Fatalf("malformed directives: got %d (%v), want %d", len(bad), bad, tc.wantBad)
			}
			kept := filterSuppressed(tc.diags, dirs)
			var lines []int
			for _, d := range kept {
				lines = append(lines, d.Position.Line)
			}
			if len(lines) != len(tc.keptLines) {
				t.Fatalf("kept %v, want lines %v", lines, tc.keptLines)
			}
			for i := range lines {
				if lines[i] != tc.keptLines[i] {
					t.Fatalf("kept %v, want lines %v", lines, tc.keptLines)
				}
			}
		})
	}
}

// TestSuppressionDifferentFile locks in that a directive in one file
// cannot suppress a finding at the same line number of another file.
func TestSuppressionDifferentFile(t *testing.T) {
	fset, files, src := parseSrc(t, "package p\nvar x = 1 //lint:ignore foo reasoned\n")
	dirs, bad := parseDirectives(fset, files, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	other := Diagnostic{
		Analyzer: "foo",
		Position: token.Position{Filename: "y.go", Line: 2, Column: 1},
		Message:  "finding",
	}
	kept := filterSuppressed([]Diagnostic{other}, dirs)
	if len(kept) != 1 {
		t.Fatalf("directive in x.go suppressed a finding in y.go")
	}
}

// TestMalformedDirectiveMessage pins the guidance text users see.
func TestMalformedDirectiveMessage(t *testing.T) {
	fset, files, src := parseSrc(t, "package p\nvar x = 1 //lint:ignore foo\n")
	_, bad := parseDirectives(fset, files, src)
	if len(bad) != 1 {
		t.Fatalf("got %d malformed findings, want 1", len(bad))
	}
	if bad[0].Analyzer != "directive" || !strings.Contains(bad[0].Message, "//lint:ignore <analyzer>") {
		t.Fatalf("unhelpful malformed-directive finding: %+v", bad[0])
	}
}
