package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints. The tier-1 gate
	// (go build) keeps the real tree clean, so these normally indicate
	// a broken testdata corpus; the driver surfaces them and exits 2.
	TypeErrors []error
}

// Loader parses and type-checks module packages into a shared FileSet.
// Stdlib and intra-module imports resolve through go/importer's source
// importer, so the whole pipeline stays on the standard library.
type Loader struct {
	Fset *token.FileSet
	// Sources caches file contents by absolute path for every parsed
	// file; the suppression scanner uses it to tell trailing directives
	// from standalone ones.
	Sources map[string][]byte

	modRoot string
	modPath string
	imp     types.Importer
}

// NewLoader locates the enclosing module (walking up from dir, "" =
// current directory) and returns a loader for its packages.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Sources: map[string][]byte{},
		modRoot: root,
		modPath: path,
		imp:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, rerr := os.ReadFile(gomod); rerr == nil {
			p := modulePath(data)
			if p == "" {
				return "", "", fmt.Errorf("lint: %s has no module line", gomod)
			}
			return d, p, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// ModRoot returns the module root directory the loader resolved — the
// base SARIF and baseline output use to make file paths
// checkout-independent.
func (l *Loader) ModRoot() string { return l.modRoot }

// Load expands the patterns and returns the matched packages sorted by
// import path. Supported patterns: a directory ("./internal/cube"), or a
// recursive pattern ("./...", "./internal/..."). Directories named
// testdata, vendor, or starting with "." or "_" are skipped during
// recursive walks (an explicit pattern root is always accepted, so the
// analyzer test harness can point at a testdata corpus directly).
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// expand resolves patterns to a sorted, de-duplicated list of candidate
// package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.modRoot
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(abs)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != abs && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a recursive walk descends into name.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// loadDir parses and type-checks the package in dir. Directories with no
// non-test Go files return (nil, nil).
func (l *Loader) loadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, path, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		l.Sources[path] = data
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return nil, err
	}
	importPath := l.modPath
	if rel != "." {
		importPath = l.modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Files: files, Info: info}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never short-circuits on soft errors thanks to conf.Error;
	// its return is folded into TypeErrors, and Info stays usable for
	// whatever did check.
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}
