# The CI pipeline's jobs, reproducible locally: `make verify` is the
# tier-1 gate, `make lint` the lint job, `make fuzz-smoke` the fuzz job,
# `make bench` the bench-regression job, `make chaos` the fault-injection
# job. See .github/workflows/ci.yml — each job runs the matching target,
# so a green local make means a green pipeline.

GO ?= go
FUZZTIME ?= 30s
BENCH_OUT ?= bench_current.ndjson
# Fault-injection seeds: each is a full deterministic chaos schedule.
# CI fans one seed per matrix leg (make chaos CHAOS_SEED=7); bare
# `make chaos` runs the whole matrix sequentially.
CHAOS_SEEDS ?= 1 7 42

.PHONY: verify fmt vet build test lint lint-selfcheck lint-suppressions fuzz-smoke bench bench-baseline chaos chaos-write qlog-smoke serve-smoke

# Tier-1 gate: vet, build, race-checked order-shuffled tests.
verify: vet build test

# The explicit statlint dirs are asserted on top of the repo-wide sweep
# so the linter's own code can never drift out of the gate.
fmt:
	@out="$$(gofmt -l . && gofmt -l cmd/statlint internal/lint)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out" | sort -u; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle=on ./...

# Static analysis: the engine's own invariants (ctx plumbing/polling,
# goroutines only via internal/parallel, errors.Is over ==, literal
# unique obs metric names, deterministic internal/ paths, recover() only
# at sanctioned panic boundaries) plus the path-sensitive resource-leak
# suite (ledgerleak, spanend, closeleak, errdrop on the CFG/dataflow
# layer), enforced by cmd/statlint on stdlib tooling alone. Non-zero
# exit on any finding; suppress per line with
# `//lint:ignore <analyzer> <reason>`. `make lint SARIF=out.sarif` also
# writes the findings as SARIF 2.1.0 (CI uploads it for PR annotations).
lint:
	$(GO) run ./cmd/statlint $(if $(SARIF),-sarif $(SARIF)) ./...

# The linter must hold itself to its own bar: statlint over its driver,
# CFG/dataflow layer and analyzers, zero findings required.
lint-selfcheck:
	$(GO) run ./cmd/statlint ./internal/lint/... ./cmd/statlint

# Suppression budget: the count of //lint:ignore directives across the
# module may only go down. Deleting a suppression? Lower the budget in
# the same commit. Needing a new one needs a reasoned bump here, in
# review's plain sight.
#
# 14 -> 17: the write path times each load for writer.publish_ns and its
# qlog flight record (2 nodeterm in internal/writer), and POST /append
# stamps the request's arrival like the query handlers do (1 nodeterm in
# internal/serve) — all wall-clock-by-declaration measurement sites.
SUPPRESSION_BUDGET ?= 17
lint-suppressions:
	@total=$$($(GO) run ./cmd/statlint -suppressions ./... | awk '$$1=="total"{print $$2}'); \
	echo "//lint:ignore directives: $$total (budget $(SUPPRESSION_BUDGET))"; \
	if [ -z "$$total" ] || [ "$$total" -gt "$(SUPPRESSION_BUDGET)" ]; then \
		echo "suppression inventory grew past the budget: remove a //lint:ignore or raise SUPPRESSION_BUDGET with justification"; \
		exit 1; \
	fi

# Fuzz smoke: every Fuzz* target for $(FUZZTIME) each, seeded from the
# committed corpora under */testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParseInterval$$' -fuzztime=$(FUZZTIME) ./internal/hierarchy
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/query
	$(GO) test -run='^$$' -fuzz='^FuzzGovernorReserve$$' -fuzztime=$(FUZZTIME) ./internal/budget
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotDecode$$' -fuzztime=$(FUZZTIME) ./internal/snapshot

# Chaos: the fault-injection suites (injected errors, panics, torn
# writes, bit-flips) under each fixed seed, race-checked. The suites
# assert the engine's failure contract: byte-identical correct result or
# clean typed error, never partial state, leaked reservation or
# readable corrupt snapshot.
chaos:
	@for seed in $(if $(CHAOS_SEED),$(CHAOS_SEED),$(CHAOS_SEEDS)); do \
		echo "== chaos seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 ./internal/fault/... ./internal/snapshot/... ./internal/serve/... ./internal/writer/... || exit 1; \
	done

# Write-path chaos: the torn-load matrix over the MVCC writer alone —
# injected errors, short writes, bit-flips and panics at
# writer.append/writer.delta/writer.publish and the snapshot
# write/rename points, per seed. The suites assert the publish
# contract: a failed load is never visible, the previous generation
# stays authoritative, and bounded retries converge byte-identically
# to the fault-free state.
chaos-write:
	@for seed in $(if $(CHAOS_SEED),$(CHAOS_SEED),$(CHAOS_SEEDS)); do \
		echo "== chaos-write seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestChaos' ./internal/writer/... || exit 1; \
	done

# Bench regression: the E9/E16 micro-benchmarks (sanity, 1 iteration) plus
# the full experiment suite's deterministic counters diffed against
# BENCH_BASELINE.json. Fails only on a tolerance breach (counters ±30%,
# duration one-sided; see scripts/benchdiff.go).
bench:
	$(GO) test -bench='E9|E16' -benchtime=1x -count=3 -run='^$$' .
	$(GO) run ./cmd/cubebench -stats-json > $(BENCH_OUT)
	bash scripts/serve_smoke.sh bench >> $(BENCH_OUT)
	$(GO) run ./scripts/benchdiff.go -baseline BENCH_BASELINE.json -current $(BENCH_OUT)

# Flight-recorder smoke: run a short benchmark slice with the query
# flight recorder on, then require statprof to reduce the NDJSON log to
# a non-empty, well-formed workload profile (-check exits non-zero on an
# empty log). qlog_profile.json is the CI artifact.
qlog-smoke:
	$(GO) run ./cmd/cubebench -stats-json -qlog qlog_smoke.ndjson E9 E16 > /dev/null
	$(GO) run ./cmd/statprof -json -check qlog_smoke.ndjson > qlog_profile.json
	$(GO) run ./cmd/statprof qlog_smoke.ndjson

# Serving-layer smoke: build statd + statload, drive a real daemon
# through a warm-cache phase (hit ratio and p99 gated) and an
# exhausted-governor phase (every request shed as a typed 429), and
# require a clean SIGTERM exit after each. serve_load.ndjson is the CI
# artifact.
serve-smoke:
	bash scripts/serve_smoke.sh

# Regenerate the committed baseline from this machine.
bench-baseline:
	$(GO) run ./cmd/cubebench -stats-json > $(BENCH_OUT)
	bash scripts/serve_smoke.sh bench >> $(BENCH_OUT)
	$(GO) run ./scripts/benchdiff.go -baseline BENCH_BASELINE.json -current $(BENCH_OUT) -update
