# The CI pipeline's jobs, reproducible locally: `make verify` is the
# tier-1 gate, `make fuzz-smoke` the fuzz job, `make bench` the
# bench-regression job. See .github/workflows/ci.yml — each job runs the
# matching target, so a green local make means a green pipeline.

GO ?= go
FUZZTIME ?= 30s
BENCH_OUT ?= bench_current.ndjson

.PHONY: verify fmt vet build test fuzz-smoke bench bench-baseline

# Tier-1 gate: vet, build, race-checked order-shuffled tests.
verify: vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle=on ./...

# Fuzz smoke: every Fuzz* target for $(FUZZTIME) each, seeded from the
# committed corpora under */testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParseInterval$$' -fuzztime=$(FUZZTIME) ./internal/hierarchy
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/query
	$(GO) test -run='^$$' -fuzz='^FuzzGovernorReserve$$' -fuzztime=$(FUZZTIME) ./internal/budget

# Bench regression: the E9 micro-benchmarks (sanity, 1 iteration) plus the
# full experiment suite's deterministic counters diffed against
# BENCH_BASELINE.json. Fails only on a tolerance breach (counters ±30%,
# duration one-sided; see scripts/benchdiff.go).
bench:
	$(GO) test -bench=E9 -benchtime=1x -count=3 -run='^$$' .
	$(GO) run ./cmd/cubebench -stats-json > $(BENCH_OUT)
	$(GO) run ./scripts/benchdiff.go -baseline BENCH_BASELINE.json -current $(BENCH_OUT)

# Regenerate the committed baseline from this machine.
bench-baseline:
	$(GO) run ./cmd/cubebench -stats-json > $(BENCH_OUT)
	$(GO) run ./scripts/benchdiff.go -baseline BENCH_BASELINE.json -current $(BENCH_OUT) -update
